// Package hotsim is the hotalloc fixture: a mock per-cycle simulator
// loop exercising every per-iteration allocation pattern the analyzer
// flags, plus the sanctioned hoisted-buffer idioms it must accept.
package hotsim

import "fmt"

type packet struct{ id, dst int }

// Bad: every allocation class inside a marked loop.
func simulateBad(cycles int) int {
	total := 0
	//bflint:hotpath
	for c := 0; c < cycles; c++ {
		buf := make([]int, 8) // want `make inside hot-path loop allocates every iteration`
		q := new(packet)      // want `new inside hot-path loop allocates every iteration`
		xs := []int{1, 2, 3}  // want `slice literal inside hot-path loop allocates a backing array`
		m := map[int]int{}    // want `map literal inside hot-path loop allocates`
		p := &packet{id: c}   // want `address of composite literal inside hot-path loop escapes`
		f := func() int {     // want `closure created inside hot-path loop allocates its capture environment`
			return c
		}
		var arrivals []packet
		arrivals = append(arrivals, packet{c, c}) // want `append to arrivals grows an unpreallocated slice`
		fmt.Println(c)                            // want `value of type int boxes into an interface parameter`
		total += buf[0] + q.id + xs[0] + m[0] + p.id + f() + len(arrivals)
	}
	return total
}

// Bad: the append's slice is declared outside the loop but still
// without capacity — the backing array regrows across iterations.
func simulateBadHoistedNoCap(cycles int) int {
	var log []packet
	//bflint:hotpath
	for c := 0; c < cycles; c++ {
		log = append(log, packet{c, c}) // want `append to log grows an unpreallocated slice`
	}
	return len(log)
}

// Good: hoisted, capacity-preallocated buffers reused via reslicing.
func simulateGood(cycles int) int {
	arrivals := make([]packet, 0, 64)
	scratch := make([]int, 16)
	total := 0
	//bflint:hotpath
	for c := 0; c < cycles; c++ {
		arrivals = arrivals[:0]
		arrivals = append(arrivals, packet{c, c}) // carry-forward to the 3-arg make: clean
		scratch[c%16] = c
		total += len(arrivals) + scratch[0]
	}
	return total
}

// Good: a marked range loop writing through hoisted state.
func drainGood(queues [][]packet) int {
	total := 0
	//bflint:hotpath
	for qi := range queues {
		total += len(queues[qi])
	}
	return total
}

// Bad: marked range loop allocating per element.
func drainBad(queues [][]packet) [][]packet {
	out := queues[:0]
	//bflint:hotpath
	for _, q := range queues {
		tmp := make([]packet, len(q)) // want `make inside hot-path loop allocates every iteration`
		copy(tmp, q)
		out = append(out, tmp) // carry-forward to the queues[:0] reslice: clean
	}
	return out
}

// Good: unmarked loops allocate freely — setup code is not hot.
func setupLoop(n int) [][]packet {
	queues := make([][]packet, n)
	for i := range queues {
		queues[i] = make([]packet, 0, 4)
	}
	return queues
}

// Good: pointer and interface arguments do not box.
func traceGood(w interface{ Write([]byte) (int, error) }, cycles int) {
	line := make([]byte, 0, 32)
	//bflint:hotpath
	for c := 0; c < cycles; c++ {
		line = append(line, byte(c))
		w.Write(line)
	}
}
