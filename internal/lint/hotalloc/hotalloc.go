// Package hotalloc implements the bflint analyzer that keeps the
// simulator per-cycle loops allocation-free. The ROADMAP's north star is
// a simulator "as fast as the hardware allows"; a single allocation per
// cycle multiplies into millions per sweep and dominates the profile.
// The two hot loops (the cycle loops of the plain and VC simulators)
// carry a `//bflint:hotpath` marker comment; inside a marked loop the
// analyzer flags
//
//   - make/new calls and slice, map, or pointer composite literals
//     (a fresh heap object every iteration — hoist the buffer),
//   - append to a slice whose backing was never preallocated with
//     capacity before the loop (traced through reaching definitions, so
//     `s = append(s, x)` chains resolve to the allocation that actually
//     backs them),
//   - function literals (a closure allocates its capture environment
//     per iteration — hoist it),
//   - interface boxing: a concrete non-pointer value passed to an
//     interface-typed parameter (fmt-style calls) allocates to box.
//
// The companion regression test routing.TestStepAllocsZero pins the
// dynamic truth the analyzer enforces statically.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"bfvlsi/internal/lint/analysis"
	"bfvlsi/internal/lint/cfg"
	"bfvlsi/internal/lint/dataflow"
)

// Marker is the comment that declares a loop allocation-critical.
const Marker = "//bflint:hotpath"

// Analyzer flags per-iteration heap allocations inside loops marked
// //bflint:hotpath.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "forbid per-iteration heap allocations (make, composite literals, closures, " +
		"append without preallocation, interface boxing) inside loops marked //bflint:hotpath",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		markers := markerLines(pass.Fset, f)
		if len(markers) == 0 {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			if pass.InTestFile(fd.Pos()) {
				return false
			}
			checkFunc(pass, fd, markers)
			return false
		})
	}
	return nil, nil
}

// markerLines collects the source lines carrying a hotpath marker.
func markerLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(strings.TrimSpace(c.Text), Marker) {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// markedLoop reports whether the loop statement at pos is annotated: the
// marker sits on the loop's own line or the line directly above it.
func markedLoop(fset *token.FileSet, markers map[int]bool, pos token.Pos) bool {
	line := fset.Position(pos).Line
	return markers[line] || markers[line-1]
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, markers map[int]bool) {
	// Collect marked loops first; reaching definitions are only computed
	// when the function actually contains one.
	var loops []ast.Stmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if markedLoop(pass.Fset, markers, n.Pos()) {
				loops = append(loops, n.(ast.Stmt))
			}
		case *ast.FuncLit:
			return false // nested literals get their own graphs; markers inside are out of scope
		}
		return true
	})
	if len(loops) == 0 {
		return
	}
	g := cfg.Build(fd.Body)
	reach := dataflow.Reaching(g, pass.TypesInfo)
	for _, loop := range loops {
		var body *ast.BlockStmt
		switch l := loop.(type) {
		case *ast.ForStmt:
			body = l.Body
		case *ast.RangeStmt:
			body = l.Body
		}
		checkLoopBody(pass, reach, loop, body)
	}
}

func checkLoopBody(pass *analysis.Pass, reach *dataflow.ReachingResult, loop ast.Stmt, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(),
				"closure created inside hot-path loop allocates its capture environment every iteration; hoist it before the loop")
			return false // its body is a different allocation context
		case *ast.CallExpr:
			checkCall(pass, reach, loop, n)
		case *ast.CompositeLit:
			checkCompositeLit(pass, n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(),
						"address of composite literal inside hot-path loop escapes to the heap every iteration; reuse a hoisted object")
				}
			}
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, reach *dataflow.ReachingResult, loop ast.Stmt, call *ast.CallExpr) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.ObjectOf(id).(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(),
					"make inside hot-path loop allocates every iteration; hoist the buffer and reuse it")
				return
			case "new":
				pass.Reportf(call.Pos(),
					"new inside hot-path loop allocates every iteration; hoist the object and reuse it")
				return
			case "append":
				checkAppend(pass, reach, loop, call)
				return
			}
		}
	}
	checkBoxing(pass, call)
}

// checkCompositeLit flags slice and map literals: each one materialises
// a fresh backing store. Struct literals are value construction — no
// heap traffic unless addressed, which the UnaryExpr case reports.
func checkCompositeLit(pass *analysis.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		pass.Reportf(lit.Pos(),
			"slice literal inside hot-path loop allocates a backing array every iteration; hoist and reuse it")
	case *types.Map:
		pass.Reportf(lit.Pos(),
			"map literal inside hot-path loop allocates every iteration; hoist and reuse it")
	}
}

// checkAppend flags append calls whose destination slice was never
// preallocated with capacity: the append grows the backing array
// repeatedly inside the hot loop. Through reaching definitions the slice
// is traced past carry-forwards (s = append(s, x), s = s[:0]) to its
// origin definitions; an origin is acceptable when it carries capacity
// (3-arg make, a reslice of an existing buffer, or a copy of another
// variable). A nil origin (plain `var s []T` or empty literal) is the
// violation.
func checkAppend(pass *analysis.Pass, reach *dataflow.ReachingResult, loop ast.Stmt, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var)
	if !ok {
		return
	}
	// The append's enclosing statement is needed for the reaching query;
	// find the innermost statement containing the call.
	stmt := enclosingStmt(loop, call)
	if stmt == nil {
		return
	}
	origins := reach.Origins(stmt, v)
	for _, o := range origins {
		if badAppendOrigin(pass, o) {
			pass.Reportf(call.Pos(),
				"append to %s grows an unpreallocated slice inside a hot-path loop (declared without capacity at %s); preallocate with make(_, 0, n) or reuse a hoisted buffer",
				id.Name, pass.Fset.Position(o.Pos))
			return
		}
	}
}

// badAppendOrigin reports whether an origin definition provides no
// preallocated capacity.
func badAppendOrigin(pass *analysis.Pass, o *dataflow.Def) bool {
	if o.Rhs == nil {
		// `var s []T` (zero value, nil backing) or an untracked
		// multi-value/range binding. Only the former is a confident
		// violation: it is a DeclStmt.
		_, isDecl := o.Stmt.(*ast.DeclStmt)
		return isDecl
	}
	switch rhs := unparen(o.Rhs).(type) {
	case *ast.CompositeLit:
		// []T{} or []T{...}: fixed tiny capacity, regrows under append.
		return true
	case *ast.CallExpr:
		if id, ok := rhs.Fun.(*ast.Ident); ok {
			if b, ok := pass.TypesInfo.ObjectOf(id).(*types.Builtin); ok && b.Name() == "make" {
				return len(rhs.Args) < 3 // make without an explicit capacity
			}
		}
	}
	// Reslices, copies of other variables, call results: assume the
	// source managed capacity.
	return false
}

// checkBoxing flags concrete non-pointer values passed to
// interface-typed parameters: the conversion allocates to box the value.
func checkBoxing(pass *analysis.Pass, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.IsType() {
		return // conversion, not a call
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			slice, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = slice.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at, ok := pass.TypesInfo.Types[arg]
		if !ok || at.Type == nil {
			continue
		}
		if at.IsNil() {
			continue
		}
		switch at.Type.Underlying().(type) {
		case *types.Interface, *types.Pointer:
			continue // already an interface, or fits the data word
		}
		pass.Reportf(arg.Pos(),
			"value of type %s boxes into an interface parameter inside a hot-path loop, allocating every iteration; move the call out of the loop or suppress with //bflint:ignore hotalloc",
			at.Type)
	}
}

// enclosingStmt returns the innermost statement under root that
// contains the node.
func enclosingStmt(root ast.Node, target ast.Node) ast.Stmt {
	var found ast.Stmt
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() > target.Pos() || n.End() < target.End() {
			return false // does not contain target; prune
		}
		if s, ok := n.(ast.Stmt); ok {
			if _, isBlock := s.(*ast.BlockStmt); !isBlock {
				found = s // innermost container wins: recorded on the way down
			}
		}
		return true
	})
	return found
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
