package dataflow

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"

	"bfvlsi/internal/lint/cfg"
)

// Env maps integer-typed variables to their current interval. A variable
// absent from the env is unconstrained (Top).
type Env map[*types.Var]Interval

func (e Env) clone() Env {
	c := make(Env, len(e))
	for v, iv := range e {
		c[v] = iv
	}
	return c
}

// Get returns the variable's interval, Top when untracked.
func (e Env) Get(v *types.Var) Interval {
	if iv, ok := e[v]; ok {
		return iv
	}
	return Top()
}

// joinEnv joins var-wise; a variable missing from either side is Top and
// drops out.
func joinEnv(a, b Env) Env {
	out := Env{}
	for v, iv := range a {
		if ov, ok := b[v]; ok {
			j := iv.Join(ov)
			if !j.IsTop() {
				out[v] = j
			}
		}
	}
	return out
}

func envEqual(a, b Env) bool {
	if len(a) != len(b) {
		return false
	}
	for v, iv := range a {
		if b[v] != iv {
			return false
		}
	}
	return true
}

// IntervalConfig parameterises the analysis for one function.
type IntervalConfig struct {
	Info *types.Info
	// Params seeds the entry environment (typically the function's int
	// parameters at Top, or caller-known ranges).
	Params Env
	// Call, when non-nil, supplies intervals for calls the analyzer
	// knows are bounded (e.g. GroupSpec accessors). Returning ok=false
	// falls back to Top.
	Call func(call *ast.CallExpr) (Interval, bool)
}

// IntervalResult holds the fixpoint: the environment in effect at the
// entry of every statement in the graph.
type IntervalResult struct {
	cfg    *IntervalConfig
	at     map[ast.Stmt]Env
	condAt map[ast.Expr]Env
	exit   Env
}

// widenAfter is the number of times a block may be re-visited with
// plain joins before widening kicks in. Two visits let a loop establish
// simple invariants (i = 0 then i = [0, bound]) before bounds blow out.
const widenAfter = 2

// Intervals runs the abstract interpretation to fixpoint over g.
func Intervals(g *cfg.Graph, config IntervalConfig) *IntervalResult {
	r := &IntervalResult{cfg: &config, at: map[ast.Stmt]Env{}, condAt: map[ast.Expr]Env{}}
	thresholds := r.collectThresholds(g)

	in := make([]Env, len(g.Blocks))
	visits := make([]int, len(g.Blocks))
	seeded := make([]bool, len(g.Blocks))
	entry := Env{}
	if config.Params != nil {
		entry = config.Params.clone()
	}
	in[g.Entry.Index] = entry
	seeded[g.Entry.Index] = true

	work := []*cfg.Block{g.Entry}
	inWork := make([]bool, len(g.Blocks))
	inWork[g.Entry.Index] = true

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b.Index] = false
		visits[b.Index]++

		env := in[b.Index].clone()
		for _, s := range b.Stmts {
			env = r.transfer(env, s)
		}
		for _, e := range b.Succs {
			out := env
			if e.Cond != nil {
				out = r.Refine(env.clone(), e.Cond, e.Taken)
			}
			t := e.To.Index
			if !seeded[t] {
				seeded[t] = true
				in[t] = out.clone()
			} else {
				joined := joinEnv(in[t], out)
				if visits[t] >= widenAfter {
					w := Env{}
					for v, iv := range in[t] {
						if jv, ok := joined[v]; ok {
							wv := iv.WidenTo(jv, thresholds)
							if !wv.IsTop() {
								w[v] = wv
							}
						}
					}
					joined = w
				}
				if envEqual(in[t], joined) {
					continue
				}
				in[t] = joined
			}
			if !inWork[t] {
				inWork[t] = true
				work = append(work, e.To)
			}
		}
	}

	// Narrowing passes: widening above applies to every revisited block,
	// so a loop-body state refined by the loop condition (i <= 24, say)
	// widens back toward the head's unbounded state after a few visits.
	// Starting from the widened post-fixpoint, re-deriving each block's
	// in-state from its predecessors' transferred-and-refined out-states
	// only shrinks intervals and stays sound; two passes recover the
	// guard-bounded shapes the analyzers care about.
	for pass := 0; pass < 2; pass++ {
		for _, blk := range g.Blocks {
			if blk == g.Entry || !seeded[blk.Index] {
				continue
			}
			var newIn Env
			first := true
			for _, e := range blk.Preds {
				if !seeded[e.From.Index] {
					continue
				}
				out := in[e.From.Index].clone()
				for _, s := range e.From.Stmts {
					out = r.transfer(out, s)
				}
				if e.Cond != nil {
					out = r.Refine(out, e.Cond, e.Taken)
				}
				if first {
					newIn, first = out, false
				} else {
					newIn = joinEnv(newIn, out)
				}
			}
			if !first {
				in[blk.Index] = newIn
			}
		}
	}

	// Recording pass: with In[] stable, replay each block once to pin
	// the env at every statement entry, and the env in which each edge
	// condition is evaluated (loop and if conditions live on edges, not
	// in blocks).
	for _, b := range g.Blocks {
		env := in[b.Index]
		if env == nil {
			env = Env{}
		}
		env = env.clone()
		for _, s := range b.Stmts {
			r.at[s] = env.clone()
			env = r.transfer(env, s)
		}
		for _, e := range b.Succs {
			if e.Cond != nil {
				if prev, ok := r.condAt[e.Cond]; ok {
					r.condAt[e.Cond] = joinEnv(prev, env)
				} else {
					r.condAt[e.Cond] = env.clone()
				}
			}
		}
		if b == g.Exit {
			r.exit = env
		}
	}
	return r
}

// collectThresholds gathers the integer constants mentioned anywhere in
// the graph's statements and edge conditions (plus each constant's
// neighbors, since refinement shifts comparison bounds by one). The
// sorted set parameterises threshold widening: a bound climbing toward
// a program constant lands exactly on it instead of blowing out to
// infinity.
func (r *IntervalResult) collectThresholds(g *cfg.Graph) []int64 {
	set := map[int64]bool{}
	addExpr := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			if sub, ok := n.(ast.Expr); ok {
				if v, ok := r.constVal(sub); ok {
					set[v] = true
					if v > mathMinInt64 {
						set[v-1] = true
					}
					if v < mathMaxInt64 {
						set[v+1] = true
					}
				}
			}
			return true
		})
	}
	for _, b := range g.Blocks {
		for _, s := range b.Stmts {
			ast.Inspect(s, func(n ast.Node) bool {
				if e, ok := n.(ast.Expr); ok {
					addExpr(e)
					return false
				}
				return true
			})
		}
		for _, e := range b.Succs {
			if e.Cond != nil {
				addExpr(e.Cond)
			}
		}
	}
	out := make([]int64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

const (
	mathMinInt64 = -1 << 63
	mathMaxInt64 = 1<<63 - 1
)

// CondEnv returns the environment in which the given if/for condition is
// evaluated. The expression must be the Cond of a statement in the
// analyzed graph; ok is false otherwise.
func (r *IntervalResult) CondEnv(cond ast.Expr) (Env, bool) {
	e, ok := r.condAt[cond]
	return e, ok
}

// RefineWithin narrows env with the short-circuit context of target
// inside root: descending toward target, the right operand of a && is
// only evaluated when the left was true, and of a || when the left was
// false. Used to evaluate a sub-expression like the shift in
// `n < 63 && v < 1<<uint(n)` under the guard to its left.
func (r *IntervalResult) RefineWithin(env Env, root, target ast.Expr) Env {
	for root != nil && root != target {
		switch e := root.(type) {
		case *ast.ParenExpr:
			root = e.X
		case *ast.BinaryExpr:
			switch {
			case e.Op == token.LAND && contains(e.Y, target):
				env = r.Refine(env.clone(), e.X, true)
				root = e.Y
			case e.Op == token.LOR && contains(e.Y, target):
				env = r.Refine(env.clone(), e.X, false)
				root = e.Y
			case contains(e.X, target):
				root = e.X
			case contains(e.Y, target):
				root = e.Y
			default:
				return env
			}
		case *ast.UnaryExpr:
			root = e.X
		case *ast.CallExpr:
			root = argContaining(e, target)
		default:
			return env
		}
	}
	return env
}

func contains(node ast.Node, target ast.Expr) bool {
	return node != nil && node.Pos() <= target.Pos() && target.End() <= node.End()
}

func argContaining(call *ast.CallExpr, target ast.Expr) ast.Expr {
	for _, a := range call.Args {
		if contains(a, target) {
			return a
		}
	}
	if contains(call.Fun, target) {
		return call.Fun
	}
	return nil
}

// EnvAt returns the environment at the entry of s (the statement must
// belong to the analyzed graph; unknown statements get an empty env).
func (r *IntervalResult) EnvAt(s ast.Stmt) Env {
	if e, ok := r.at[s]; ok {
		return e
	}
	return Env{}
}

// Eval evaluates an expression in env. It is exposed so analyzers can
// re-evaluate sub-expressions at a reporting site.
func (r *IntervalResult) Eval(env Env, e ast.Expr) Interval {
	return r.eval(env, e)
}

func (r *IntervalResult) intVar(e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := r.cfg.Info.ObjectOf(id).(*types.Var)
	if !ok {
		return nil
	}
	if !isIntegerType(v.Type()) {
		return nil
	}
	return v
}

func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isUnsignedType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsUnsigned != 0
}

func (r *IntervalResult) constVal(e ast.Expr) (int64, bool) {
	tv, ok := r.cfg.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	if tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, exact := constant.Int64Val(tv.Value)
	if !exact {
		return 0, false
	}
	return v, true
}

func (r *IntervalResult) eval(env Env, e ast.Expr) Interval {
	if v, ok := r.constVal(e); ok {
		return Const(v)
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return r.eval(env, e.X)
	case *ast.Ident:
		if v := r.intVar(e); v != nil {
			return env.Get(v)
		}
	case *ast.UnaryExpr:
		if e.Op == token.SUB {
			return r.eval(env, e.X).Neg()
		}
		if e.Op == token.ADD {
			return r.eval(env, e.X)
		}
	case *ast.BinaryExpr:
		x := r.eval(env, e.X)
		y := r.eval(env, e.Y)
		switch e.Op {
		case token.ADD:
			return x.Add(y)
		case token.SUB:
			return x.Sub(y)
		case token.MUL:
			return x.Mul(y)
		case token.QUO:
			return x.Div(y)
		case token.REM:
			return x.Rem(y)
		case token.SHL:
			return x.Shl(y)
		case token.SHR:
			return x.Shr(y)
		case token.AND:
			return x.And(y)
		}
	case *ast.CallExpr:
		return r.evalCall(env, e)
	}
	return Top()
}

func (r *IntervalResult) evalCall(env Env, call *ast.CallExpr) Interval {
	// Type conversion: T(x).
	if tv, ok := r.cfg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		arg := r.eval(env, call.Args[0])
		if isUnsignedType(tv.Type) {
			// uint(x) of a possibly-negative x wraps to a huge value —
			// the exact hazard overflowcalc looks for in shift amounts.
			return arg.ClampNonNeg()
		}
		if isIntegerType(tv.Type) {
			return arg
		}
		return Top()
	}
	// Builtins len/cap: a Go slice or string length is far below 2^48
	// on any real machine.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := r.cfg.Info.ObjectOf(id).(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap":
				return Range(0, 1<<48)
			}
		}
	}
	if r.cfg.Call != nil {
		if iv, ok := r.cfg.Call(call); ok {
			return iv
		}
	}
	return Top()
}

// transfer applies one statement to the environment.
func (r *IntervalResult) transfer(env Env, s ast.Stmt) Env {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) == len(s.Rhs) {
			// Evaluate all RHS in the pre-state (Go semantics), then bind.
			vals := make([]Interval, len(s.Rhs))
			for i, rhs := range s.Rhs {
				if s.Tok == token.ASSIGN || s.Tok == token.DEFINE {
					vals[i] = r.eval(env, rhs)
				} else {
					// Compound x op= e desugars to x = x op e.
					vals[i] = r.evalCompound(env, s.Lhs[i], rhs, s.Tok)
				}
			}
			for i, lhs := range s.Lhs {
				if v := r.intVar(lhs); v != nil {
					setEnv(env, v, vals[i])
				} else {
					r.clobber(env, lhs)
				}
			}
		} else {
			// Multi-value: results unknown.
			for _, lhs := range s.Lhs {
				if v := r.intVar(lhs); v != nil {
					delete(env, v)
				} else {
					r.clobber(env, lhs)
				}
			}
		}
	case *ast.IncDecStmt:
		if v := r.intVar(s.X); v != nil {
			one := Const(1)
			if s.Tok == token.DEC {
				one = Const(-1)
			}
			setEnv(env, v, env.Get(v).Add(one))
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					v, ok := r.cfg.Info.Defs[name].(*types.Var)
					if !ok || !isIntegerType(v.Type()) {
						continue
					}
					if i < len(vs.Values) {
						setEnv(env, v, r.eval(env, vs.Values[i]))
					} else {
						setEnv(env, v, Const(0)) // zero value
					}
				}
			}
		}
	case *ast.RangeStmt:
		// Key of a slice/map/string range is a non-negative index (or an
		// arbitrary map key — still int-typed only for int-keyed maps,
		// where nothing is known). Be conservative: key >= 0 only for
		// non-map operands.
		if s.Key != nil {
			if v := r.intVar(s.Key); v != nil {
				if tv, ok := r.cfg.Info.Types[s.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
						setEnv(env, v, Range(0, 1<<48))
					} else {
						delete(env, v)
					}
				} else {
					delete(env, v)
				}
			}
		}
		if s.Value != nil {
			if v := r.intVar(s.Value); v != nil {
				delete(env, v)
			}
		}
	case *ast.ExprStmt, *ast.SendStmt, *ast.GoStmt, *ast.DeferStmt,
		*ast.ReturnStmt, *ast.BranchStmt, *ast.EmptyStmt, *ast.LabeledStmt:
		// No integer variable bindings.
	}
	return env
}

func setEnv(env Env, v *types.Var, iv Interval) {
	if iv.IsTop() {
		delete(env, v)
		return
	}
	env[v] = iv
}

// clobber handles assignment through a non-ident lvalue (*p = …,
// s.f = …, a[i] = …): no tracked var is written directly, nothing to do
// (tracked vars are locals/params read by value).
func (r *IntervalResult) clobber(Env, ast.Expr) {}

func (r *IntervalResult) evalCompound(env Env, lhs, rhs ast.Expr, tok token.Token) Interval {
	x := r.eval(env, lhs)
	y := r.eval(env, rhs)
	switch tok {
	case token.ADD_ASSIGN:
		return x.Add(y)
	case token.SUB_ASSIGN:
		return x.Sub(y)
	case token.MUL_ASSIGN:
		return x.Mul(y)
	case token.QUO_ASSIGN:
		return x.Div(y)
	case token.REM_ASSIGN:
		return x.Rem(y)
	case token.SHL_ASSIGN:
		return x.Shl(y)
	case token.SHR_ASSIGN:
		return x.Shr(y)
	case token.AND_ASSIGN:
		return x.And(y)
	}
	return Top()
}

// Refine narrows env assuming cond evaluated to taken. It understands
// negation, && / || short-circuit (on the branch where both operands'
// values are determined), and comparisons between a tracked variable and
// an evaluable expression.
func (r *IntervalResult) Refine(env Env, cond ast.Expr, taken bool) Env {
	switch cond := cond.(type) {
	case *ast.ParenExpr:
		return r.Refine(env, cond.X, taken)
	case *ast.UnaryExpr:
		if cond.Op == token.NOT {
			return r.Refine(env, cond.X, !taken)
		}
	case *ast.BinaryExpr:
		switch cond.Op {
		case token.LAND:
			if taken {
				env = r.Refine(env, cond.X, true)
				return r.Refine(env, cond.Y, true)
			}
			return env // either side may be false: nothing certain
		case token.LOR:
			if !taken {
				env = r.Refine(env, cond.X, false)
				return r.Refine(env, cond.Y, false)
			}
			return env
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			op := cond.Op
			if !taken {
				op = negateCmp(op)
			}
			r.refineCmp(env, cond.X, op, cond.Y)
			return env
		}
	}
	return env
}

func negateCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	}
	return op
}

func flipCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return op // EQL / NEQ symmetric
}

// refineCmp applies "x op y" to env, constraining either side that is a
// tracked variable against the interval of the other.
func (r *IntervalResult) refineCmp(env Env, x ast.Expr, op token.Token, y ast.Expr) {
	if v := r.intVar(unparen(x)); v != nil {
		r.constrain(env, v, op, r.eval(env, y))
	}
	if v := r.intVar(unparen(y)); v != nil {
		r.constrain(env, v, flipCmp(op), r.eval(env, x))
	}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func (r *IntervalResult) constrain(env Env, v *types.Var, op token.Token, bound Interval) {
	cur := env.Get(v)
	switch op {
	case token.LSS: // v < bound  =>  v <= bound.Hi - 1
		cur = cur.Meet(Interval{NegInf, addBound(bound.Hi, Finite(-1))})
	case token.LEQ:
		cur = cur.Meet(Interval{NegInf, bound.Hi})
	case token.GTR: // v > bound  =>  v >= bound.Lo + 1
		cur = cur.Meet(Interval{addBound(bound.Lo, Finite(1)), PosInf})
	case token.GEQ:
		cur = cur.Meet(Interval{bound.Lo, PosInf})
	case token.EQL:
		cur = cur.Meet(bound)
	case token.NEQ:
		// Only useful when the excluded value is an endpoint.
		if bound.Lo == bound.Hi && bound.Lo.Inf == 0 {
			if cur.Lo == bound.Lo {
				cur.Lo = addBound(cur.Lo, Finite(1))
			} else if cur.Hi == bound.Hi {
				cur.Hi = addBound(cur.Hi, Finite(-1))
			}
		}
	}
	setEnv(env, v, cur)
}
