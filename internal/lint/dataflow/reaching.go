package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"bfvlsi/internal/lint/cfg"
)

// A Def is one definition of a variable: an assignment, declaration,
// range binding, or inc/dec. SelfRef marks carry-forward definitions
// whose right-hand side reads the same variable — s = append(s, x),
// s = s[:0], s = s[1:], i++ — which reshape an existing value rather
// than produce a fresh one. hotalloc uses the distinction to trace an
// in-loop append back to the allocation that actually backs it.
type Def struct {
	Var     *types.Var
	Stmt    ast.Stmt // the defining statement
	Rhs     ast.Expr // defining expression; nil when unknown (multi-value, range, zero value)
	SelfRef bool
	Pos     token.Pos
}

// ReachingResult answers which definitions of a variable may reach a
// statement.
type ReachingResult struct {
	info *types.Info
	// defsAt[s] is the reaching-def set at the ENTRY of statement s.
	defsAt map[ast.Stmt]map[*types.Var][]*Def
}

// Reaching computes may-reach definitions over g.
func Reaching(g *cfg.Graph, info *types.Info) *ReachingResult {
	r := &ReachingResult{info: info, defsAt: map[ast.Stmt]map[*types.Var][]*Def{}}

	type defSet map[*Def]bool
	type varDefs map[*types.Var]defSet

	clone := func(m varDefs) varDefs {
		c := make(varDefs, len(m))
		for v, s := range m {
			cs := make(defSet, len(s))
			for d := range s {
				cs[d] = true
			}
			c[v] = cs
		}
		return c
	}
	merge := func(dst, src varDefs) bool {
		changed := false
		for v, s := range src {
			ds, ok := dst[v]
			if !ok {
				ds = defSet{}
				dst[v] = ds
			}
			for d := range s {
				if !ds[d] {
					ds[d] = true
					changed = true
				}
			}
		}
		return changed
	}

	// Cache Def objects per (stmt, var) so repeated transfer passes reuse
	// identities and the fixpoint terminates.
	defCache := map[ast.Stmt]map[*types.Var]*Def{}
	defFor := func(s ast.Stmt, v *types.Var, rhs ast.Expr, selfRef bool, pos token.Pos) *Def {
		m := defCache[s]
		if m == nil {
			m = map[*types.Var]*Def{}
			defCache[s] = m
		}
		if d, ok := m[v]; ok {
			return d
		}
		d := &Def{Var: v, Stmt: s, Rhs: rhs, SelfRef: selfRef, Pos: pos}
		m[v] = d
		return d
	}

	transfer := func(state varDefs, s ast.Stmt) {
		kill := func(v *types.Var, d *Def) {
			state[v] = defSet{d: true}
		}
		switch s := s.(type) {
		case *ast.AssignStmt:
			oneToOne := len(s.Lhs) == len(s.Rhs)
			for i, lhs := range s.Lhs {
				id, ok := unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := info.ObjectOf(id).(*types.Var)
				if !ok {
					continue
				}
				var rhs ast.Expr
				if oneToOne {
					rhs = s.Rhs[i]
				}
				selfRef := s.Tok != token.ASSIGN && s.Tok != token.DEFINE // compound op= reads lhs
				if !selfRef && rhs != nil {
					selfRef = refersTo(info, rhs, v)
				}
				kill(v, defFor(s, v, rhs, selfRef, id.Pos()))
			}
		case *ast.IncDecStmt:
			if id, ok := unparen(s.X).(*ast.Ident); ok {
				if v, ok := info.ObjectOf(id).(*types.Var); ok {
					kill(v, defFor(s, v, nil, true, id.Pos()))
				}
			}
		case *ast.DeclStmt:
			gd, ok := s.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					v, ok := info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					var rhs ast.Expr
					if i < len(vs.Values) && len(vs.Values) == len(vs.Names) {
						rhs = vs.Values[i]
					}
					kill(v, defFor(s, v, rhs, false, name.Pos()))
				}
			}
		case *ast.RangeStmt:
			for _, x := range []ast.Expr{s.Key, s.Value} {
				if x == nil {
					continue
				}
				if id, ok := unparen(x).(*ast.Ident); ok {
					if v, ok := info.ObjectOf(id).(*types.Var); ok {
						kill(v, defFor(s, v, nil, false, id.Pos()))
					}
				}
			}
		}
	}

	in := make([]varDefs, len(g.Blocks))
	for i := range in {
		in[i] = varDefs{}
	}
	work := []*cfg.Block{g.Entry}
	inWork := make([]bool, len(g.Blocks))
	inWork[g.Entry.Index] = true
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b.Index] = false
		state := clone(in[b.Index])
		for _, s := range b.Stmts {
			transfer(state, s)
		}
		for _, e := range b.Succs {
			if merge(in[e.To.Index], state) && !inWork[e.To.Index] {
				inWork[e.To.Index] = true
				work = append(work, e.To)
			}
		}
	}

	// Recording pass.
	for _, b := range g.Blocks {
		state := clone(in[b.Index])
		for _, s := range b.Stmts {
			snap := map[*types.Var][]*Def{}
			for v, ds := range state {
				for d := range ds {
					snap[v] = append(snap[v], d)
				}
			}
			r.defsAt[s] = snap
			transfer(state, s)
		}
	}
	return r
}

// refersTo reports whether expr reads v.
func refersTo(info *types.Info, expr ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == v {
			found = true
		}
		return !found
	})
	return found
}

// DefsAt returns the definitions of v that may reach the entry of s.
func (r *ReachingResult) DefsAt(s ast.Stmt, v *types.Var) []*Def {
	return r.defsAt[s][v]
}

// Origins resolves carry-forward chains: starting from the defs of v
// reaching s, every SelfRef def is expanded into the defs reaching ITS
// statement, until only fresh (non-self-referential) definitions remain.
// For `s = append(s, x)` inside a loop this surfaces the allocation
// site(s) that actually back the slice.
func (r *ReachingResult) Origins(s ast.Stmt, v *types.Var) []*Def {
	seen := map[*Def]bool{}
	var out []*Def
	var expand func(d *Def)
	expand = func(d *Def) {
		if seen[d] {
			return
		}
		seen[d] = true
		if !d.SelfRef {
			out = append(out, d)
			return
		}
		for _, prev := range r.DefsAt(d.Stmt, v) {
			expand(prev)
		}
	}
	for _, d := range r.defsAt[s][v] {
		expand(d)
	}
	return out
}
