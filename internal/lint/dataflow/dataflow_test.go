package dataflow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"math"
	"testing"

	"bfvlsi/internal/lint/cfg"
)

// --- interval domain ---------------------------------------------------

func TestIntervalArithmetic(t *testing.T) {
	tests := []struct {
		name string
		got  Interval
		want string
	}{
		{"add", Range(1, 2).Add(Range(10, 20)), "[11,22]"},
		{"sub", Range(1, 2).Sub(Range(10, 20)), "[-19,-8]"},
		{"mul", Range(2, 3).Mul(Range(4, 5)), "[8,15]"},
		{"mul_neg", Range(-3, 2).Mul(Range(4, 5)), "[-15,10]"},
		{"mul_sat", Const(math.MaxInt64).Mul(Const(2)), "[+inf,+inf]"},
		{"shl", Const(1).Shl(Range(0, 10)), "[1,1024]"},
		{"shl_sat", Const(1).Shl(Range(0, 63)), "[1,+inf]"},
		{"shl_top_amount", Const(1).Shl(Top()), "[1,+inf]"},
		{"shr", Range(0, 1024).Shr(Const(2)), "[0,256]"},
		{"div", Range(10, 100).Div(Const(4)), "[2,25]"},
		{"div_mininit", Const(math.MinInt64).Div(Const(-1)), "[+inf,+inf]"},
		{"rem", Top().Rem(Const(8)), "[-7,7]"},
		{"rem_nonneg", Range(0, 100).Rem(Const(8)), "[0,7]"},
		{"and", Range(0, 255).And(Range(0, 15)), "[0,15]"},
		{"neg", Range(-3, 7).Neg(), "[-7,3]"},
		{"neg_min", Const(math.MinInt64).Neg(), "[+inf,+inf]"},
		{"join", Range(0, 3).Join(Range(10, 20)), "[0,20]"},
		{"meet", Range(0, 30).Meet(Range(10, 50)), "[10,30]"},
		{"widen_hi", Range(0, 3).Widen(Range(0, 4)), "[0,+inf]"},
		{"widen_stable", Range(0, 3).Widen(Range(1, 3)), "[0,3]"},
		{"clamp_nonneg", Range(-5, 10).ClampNonNeg(), "[0,+inf]"},
		{"clamp_pos", Range(2, 10).ClampNonNeg(), "[2,10]"},
	}
	for _, tt := range tests {
		if got := tt.got.String(); got != tt.want {
			t.Errorf("%s = %s, want %s", tt.name, got, tt.want)
		}
	}
}

func TestIntervalPredicates(t *testing.T) {
	if !Top().IsTop() {
		t.Error("Top should be top")
	}
	if Top().Bounded() {
		t.Error("Top is not bounded")
	}
	if !Range(0, 9).Bounded() {
		t.Error("[0,9] is bounded")
	}
	if Range(0, 9).MayBeNegative() {
		t.Error("[0,9] cannot be negative")
	}
	if !Range(-1, 9).MayBeNegative() {
		t.Error("[-1,9] may be negative")
	}
	if !Range(0, 30).Meet(Range(40, 50)).IsEmpty() {
		t.Error("disjoint meet should be empty")
	}
}

// --- interpreter harness ----------------------------------------------

type fn struct {
	fset *token.FileSet
	info *types.Info
	decl *ast.FuncDecl
}

// typecheck parses src (a full file) and returns the named function.
func typecheck(t *testing.T, src, name string) fn {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:  map[ast.Expr]types.TypeAndValue{},
		Defs:   map[*ast.Ident]types.Object{},
		Uses:   map[*ast.Ident]types.Object{},
		Scopes: map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fn{fset, info, fd}
		}
	}
	t.Fatalf("no func %s", name)
	return fn{}
}

// findVar looks up a parameter/local by name within the function scope.
func (f fn) findVar(t *testing.T, name string) *types.Var {
	t.Helper()
	var found *types.Var
	ast.Inspect(f.decl, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			if v, ok := f.info.ObjectOf(id).(*types.Var); ok {
				found = v
			}
		}
		return true
	})
	if found == nil {
		t.Fatalf("var %s not found", name)
	}
	return found
}

// stmtContaining returns the innermost statement of the body whose text
// contains the marker comment position — simpler: the i-th statement of
// a walk in source order matching pred.
func (f fn) findStmt(t *testing.T, pred func(ast.Stmt) bool) ast.Stmt {
	t.Helper()
	var found ast.Stmt
	ast.Inspect(f.decl.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if s, ok := n.(ast.Stmt); ok && pred(s) {
			found = s
			return false
		}
		return true
	})
	if found == nil {
		t.Fatal("statement not found")
	}
	return found
}

func isReturn(s ast.Stmt) bool { _, ok := s.(*ast.ReturnStmt); return ok }

func TestIntervalBranchRefinement(t *testing.T) {
	f := typecheck(t, `package p
func g(n int) int {
	if n < 0 || n > 12 {
		return -1
	}
	return n
}`, "g")
	g := cfg.Build(f.decl.Body)
	res := Intervals(g, IntervalConfig{Info: f.info})
	nv := f.findVar(t, "n")

	// At the second return (the guarded path) n must be [0,12].
	var returns []ast.Stmt
	ast.Inspect(f.decl.Body, func(n ast.Node) bool {
		if s, ok := n.(*ast.ReturnStmt); ok {
			returns = append(returns, s)
		}
		return true
	})
	if len(returns) != 2 {
		t.Fatalf("want 2 returns, got %d", len(returns))
	}
	env := res.EnvAt(returns[1])
	if got := env.Get(nv).String(); got != "[0,12]" {
		t.Errorf("guarded n = %s, want [0,12]", got)
	}
	// At the first return n is unconstrained-ish (outside [0,12]).
	env = res.EnvAt(returns[0])
	if got := env.Get(nv); !got.MayBeNegative() && got.Bounded() {
		t.Errorf("unguarded-branch n unexpectedly bounded non-negative: %s", got)
	}
}

func TestIntervalGuardedShift(t *testing.T) {
	f := typecheck(t, `package p
func g(n int) int {
	if n < 1 || n > 14 {
		return 0
	}
	return 1 << uint(n)
}`, "g")
	g := cfg.Build(f.decl.Body)
	res := Intervals(g, IntervalConfig{Info: f.info})
	ret := f.findStmt(t, func(s ast.Stmt) bool {
		r, ok := s.(*ast.ReturnStmt)
		if !ok {
			return false
		}
		_, isShift := r.Results[0].(*ast.BinaryExpr)
		return isShift
	})
	env := res.EnvAt(ret)
	iv := res.Eval(env, ret.(*ast.ReturnStmt).Results[0])
	if got := iv.String(); got != "[2,16384]" {
		t.Errorf("guarded 1<<uint(n) = %s, want [2,16384]", got)
	}
}

func TestIntervalUnguardedShiftUnbounded(t *testing.T) {
	f := typecheck(t, `package p
func g(n int) int {
	return 1 << uint(n)
}`, "g")
	g := cfg.Build(f.decl.Body)
	res := Intervals(g, IntervalConfig{Info: f.info})
	ret := f.findStmt(t, isReturn)
	iv := res.Eval(res.EnvAt(ret), ret.(*ast.ReturnStmt).Results[0])
	if iv.Bounded() {
		t.Errorf("unguarded 1<<uint(n) should be unbounded, got %s", iv)
	}
}

func TestIntervalSquareAfterGuard(t *testing.T) {
	f := typecheck(t, `package p
func g(n int) int {
	if n > 1000 {
		return 0
	}
	if n < 0 {
		return 0
	}
	return n * n
}`, "g")
	g := cfg.Build(f.decl.Body)
	res := Intervals(g, IntervalConfig{Info: f.info})
	ret := f.findStmt(t, func(s ast.Stmt) bool {
		r, ok := s.(*ast.ReturnStmt)
		if !ok {
			return false
		}
		_, isMul := r.Results[0].(*ast.BinaryExpr)
		return isMul
	})
	iv := res.Eval(res.EnvAt(ret), ret.(*ast.ReturnStmt).Results[0])
	if got := iv.String(); got != "[0,1000000]" {
		t.Errorf("guarded n*n = %s, want [0,1000000]", got)
	}
}

func TestIntervalLoopWidening(t *testing.T) {
	f := typecheck(t, `package p
func g() int {
	s := 0
	for i := 0; i < 10; i++ {
		s += i
	}
	return s
}`, "g")
	g := cfg.Build(f.decl.Body)
	res := Intervals(g, IntervalConfig{Info: f.info})
	ret := f.findStmt(t, isReturn)
	sv := f.findVar(t, "s")
	// s grows in the loop: widening must terminate, and s stays >= 0.
	iv := res.EnvAt(ret).Get(sv)
	if iv.MayBeNegative() {
		t.Errorf("s should be non-negative after widening, got %s", iv)
	}
	// The loop index is bounded by the condition at loop exit.
	iv2 := res.EnvAt(ret).Get(f.findVar(t, "i"))
	_ = iv2 // i is out of scope semantics-wise; nothing asserted beyond termination
}

// A guard-bounded parameter must keep its bound through nested loops.
// Loop-exit refinement transiently narrows k (exiting with d = 0 implies
// k <= 0), and when the join grows k back to its true [0,30] the widener
// used to mistake that for unbounded growth and blow the bound to +inf —
// through a cycle narrowing cannot repair. Threshold widening lands the
// bound back on the program constant instead.
func TestIntervalThresholdWideningNestedLoops(t *testing.T) {
	f := typecheck(t, `package p
func g(k int) int {
	if k < 0 || k > 30 {
		return 0
	}
	n := 1 << uint(k)
	total := 0
	for u := 0; u < n; u++ {
		for d := 0; d < k; d++ {
			total += 1 << uint(d)
		}
	}
	return total
}`, "g")
	g := cfg.Build(f.decl.Body)
	res := Intervals(g, IntervalConfig{Info: f.info})
	shiftStmt := f.findStmt(t, func(s ast.Stmt) bool {
		a, ok := s.(*ast.AssignStmt)
		return ok && a.Tok == token.ADD_ASSIGN
	})
	env := res.EnvAt(shiftStmt)
	if got := env.Get(f.findVar(t, "k")); !got.Bounded() {
		t.Errorf("k in inner loop = %s, want bounded", got)
	}
	if got := env.Get(f.findVar(t, "d")); !got.Bounded() {
		t.Errorf("d in inner loop = %s, want bounded", got)
	}
	iv := res.Eval(env, shiftStmt.(*ast.AssignStmt).Rhs[0])
	if got := iv.String(); got != "[1,536870912]" {
		t.Errorf("1<<uint(d) under d<k<=30 = %s, want [1,536870912]", got)
	}
}

func TestWidenToThresholds(t *testing.T) {
	ths := []int64{0, 10, 100}
	// Growth within the threshold list lands on the next threshold.
	w := Range(0, 3).WidenTo(Range(0, 7), ths)
	if got := w.String(); got != "[0,10]" {
		t.Errorf("WidenTo hi = %s, want [0,10]", got)
	}
	// Growth past every threshold still widens to infinity.
	w = Range(0, 10).WidenTo(Range(0, 1000), ths)
	if !w.Hi.isPosInf() {
		t.Errorf("WidenTo beyond thresholds = %s, want hi=+inf", w)
	}
	// Shrinking or stable bounds are untouched.
	w = Range(0, 10).WidenTo(Range(2, 10), ths)
	if got := w.String(); got != "[0,10]" {
		t.Errorf("WidenTo stable = %s, want [0,10]", got)
	}
	// A dropping lower bound lands on the largest threshold below it.
	w = Range(50, 60).WidenTo(Range(5, 60), ths)
	if got := w.String(); got != "[0,60]" {
		t.Errorf("WidenTo lo = %s, want [0,60]", got)
	}
}

func TestIntervalBoundedCallHook(t *testing.T) {
	f := typecheck(t, `package p
func w() int
func g() int {
	return 1 << uint(w())
}`, "g")
	g := cfg.Build(f.decl.Body)
	res := Intervals(g, IntervalConfig{
		Info: f.info,
		Call: func(*ast.CallExpr) (Interval, bool) { return Range(0, 10), true },
	})
	ret := f.findStmt(t, isReturn)
	iv := res.Eval(res.EnvAt(ret), ret.(*ast.ReturnStmt).Results[0])
	if got := iv.String(); got != "[1,1024]" {
		t.Errorf("1<<bounded-call = %s, want [1,1024]", got)
	}
}

func TestIntervalUintOfNegative(t *testing.T) {
	f := typecheck(t, `package p
func g(n int) int {
	if n > 5 {
		return 0
	}
	return 2 << uint(n-2)
}`, "g")
	g := cfg.Build(f.decl.Body)
	res := Intervals(g, IntervalConfig{Info: f.info})
	ret := f.findStmt(t, func(s ast.Stmt) bool {
		r, ok := s.(*ast.ReturnStmt)
		if !ok {
			return false
		}
		_, isShift := r.Results[0].(*ast.BinaryExpr)
		return isShift
	})
	iv := res.Eval(res.EnvAt(ret), ret.(*ast.ReturnStmt).Results[0])
	// n <= 5 but n may be negative: uint(n-2) may be huge, so the shift
	// is unbounded — the stack3d wrap hazard.
	if iv.Bounded() {
		t.Errorf("2<<uint(n-2) with possibly-negative n should be unbounded, got %s", iv)
	}
}

// --- reaching definitions ---------------------------------------------

func TestReachingAppendOrigins(t *testing.T) {
	f := typecheck(t, `package p
func g(n int) []int {
	var s []int
	for i := 0; i < n; i++ {
		s = append(s, i)
	}
	return s
}`, "g")
	g := cfg.Build(f.decl.Body)
	r := Reaching(g, f.info)
	sv := f.findVar(t, "s")
	appendStmt := f.findStmt(t, func(s ast.Stmt) bool {
		a, ok := s.(*ast.AssignStmt)
		return ok && len(a.Rhs) == 1 && isCallTo(a.Rhs[0], "append")
	})
	origins := r.Origins(appendStmt, sv)
	if len(origins) != 1 {
		t.Fatalf("want 1 origin, got %d", len(origins))
	}
	if origins[0].SelfRef {
		t.Error("origin must be the fresh var decl, not the append")
	}
	if _, ok := origins[0].Stmt.(*ast.DeclStmt); !ok {
		t.Errorf("origin should be the var decl, got %T", origins[0].Stmt)
	}
	// The append itself must be classified as a carry-forward.
	defs := r.DefsAt(f.findStmt(t, isReturn), sv)
	foundSelf := false
	for _, d := range defs {
		if d.SelfRef {
			foundSelf = true
		}
	}
	if !foundSelf {
		t.Error("append def should be self-referential and reach the return")
	}
}

func TestReachingPreallocatedOrigin(t *testing.T) {
	f := typecheck(t, `package p
func g(n int) []int {
	s := make([]int, 0, n)
	for i := 0; i < n; i++ {
		s = append(s, i)
	}
	return s
}`, "g")
	g := cfg.Build(f.decl.Body)
	r := Reaching(g, f.info)
	sv := f.findVar(t, "s")
	appendStmt := f.findStmt(t, func(s ast.Stmt) bool {
		a, ok := s.(*ast.AssignStmt)
		return ok && len(a.Rhs) == 1 && isCallTo(a.Rhs[0], "append")
	})
	origins := r.Origins(appendStmt, sv)
	if len(origins) != 1 {
		t.Fatalf("want 1 origin, got %d", len(origins))
	}
	if !isCallTo(origins[0].Rhs, "make") {
		t.Errorf("origin rhs should be the make call, got %v", origins[0].Rhs)
	}
}

func TestReachingResliceCarryForward(t *testing.T) {
	f := typecheck(t, `package p
func g(buf []int, n int) []int {
	s := buf[:0]
	for i := 0; i < n; i++ {
		s = append(s, i)
	}
	return s
}`, "g")
	g := cfg.Build(f.decl.Body)
	r := Reaching(g, f.info)
	sv := f.findVar(t, "s")
	appendStmt := f.findStmt(t, func(s ast.Stmt) bool {
		a, ok := s.(*ast.AssignStmt)
		return ok && len(a.Rhs) == 1 && isCallTo(a.Rhs[0], "append")
	})
	origins := r.Origins(appendStmt, sv)
	if len(origins) != 1 {
		t.Fatalf("want 1 origin, got %d", len(origins))
	}
	if _, ok := origins[0].Rhs.(*ast.SliceExpr); !ok {
		t.Errorf("origin should be the buf[:0] reslice, got %T", origins[0].Rhs)
	}
}

func TestReachingBranchMerge(t *testing.T) {
	f := typecheck(t, `package p
func g(c bool) int {
	x := 1
	if c {
		x = 2
	}
	return x
}`, "g")
	g := cfg.Build(f.decl.Body)
	r := Reaching(g, f.info)
	xv := f.findVar(t, "x")
	defs := r.DefsAt(f.findStmt(t, isReturn), xv)
	if len(defs) != 2 {
		t.Fatalf("both branch defs must reach the return, got %d", len(defs))
	}
}

func isCallTo(e ast.Expr, name string) bool {
	c, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := c.Fun.(*ast.Ident)
	return ok && id.Name == name
}
