// Package dataflow implements the small intraprocedural analyses the
// bflint v2 analyzers are built on: an interval abstract-interpretation
// domain with widening and branch refinement (used by overflowcalc) and
// reaching definitions with carry-forward tracking (used by hotalloc).
// Both run over the control-flow graphs built by internal/lint/cfg and
// need nothing outside the standard library.
package dataflow

import (
	"math"
	"strconv"
)

// A Bound is one end of an interval: either a finite int64 or an
// infinity. Inf < 0 means -∞, Inf > 0 means +∞, Inf == 0 means the
// finite value V.
type Bound struct {
	Inf int8
	V   int64
}

// NegInf and PosInf are the unbounded ends.
var (
	NegInf = Bound{Inf: -1}
	PosInf = Bound{Inf: +1}
)

func Finite(v int64) Bound { return Bound{V: v} }

func (b Bound) isNegInf() bool { return b.Inf < 0 }
func (b Bound) isPosInf() bool { return b.Inf > 0 }

// cmp orders bounds with -∞ < any finite < +∞.
func (b Bound) cmp(o Bound) int {
	switch {
	case b.Inf != o.Inf:
		if b.Inf < o.Inf {
			return -1
		}
		return 1
	case b.Inf != 0:
		return 0
	case b.V < o.V:
		return -1
	case b.V > o.V:
		return 1
	}
	return 0
}

func minBound(a, b Bound) Bound {
	if a.cmp(b) <= 0 {
		return a
	}
	return b
}

func maxBound(a, b Bound) Bound {
	if a.cmp(b) >= 0 {
		return a
	}
	return b
}

// addBound saturates: a finite sum that overflows int64 becomes the
// infinity of the overflow direction. Mixing -∞ and +∞ never happens in
// interval arithmetic (lo is added to lo, hi to hi); if it does, the
// result conservatively keeps the left operand's infinity.
func addBound(a, b Bound) Bound {
	if a.Inf != 0 {
		return a
	}
	if b.Inf != 0 {
		return b
	}
	s := a.V + b.V
	if (a.V > 0 && b.V > 0 && s < 0) || (a.V < 0 && b.V < 0 && s >= 0) {
		if a.V > 0 {
			return PosInf
		}
		return NegInf
	}
	return Finite(s)
}

// mulBound uses the 0·∞ = 0 convention, which is sound for computing
// interval corner products.
func mulBound(a, b Bound) Bound {
	az := a.Inf == 0 && a.V == 0
	bz := b.Inf == 0 && b.V == 0
	if az || bz {
		return Finite(0)
	}
	sign := int8(1)
	if a.isNegInf() || (a.Inf == 0 && a.V < 0) {
		sign = -sign
	}
	if b.isNegInf() || (b.Inf == 0 && b.V < 0) {
		sign = -sign
	}
	if a.Inf != 0 || b.Inf != 0 {
		return Bound{Inf: sign}
	}
	p := a.V * b.V
	// Overflow check: division round-trip fails exactly when the product
	// wrapped (a.V != 0 is known here). MinInt64 / -1 overflows the
	// check itself, so handle it first.
	if a.V == -1 && b.V == math.MinInt64 || b.V == -1 && a.V == math.MinInt64 {
		return Bound{Inf: sign}
	}
	if p/a.V != b.V {
		return Bound{Inf: sign}
	}
	return Finite(p)
}

// shlBound computes x << s for a single corner, saturating. Shift
// amounts above 62 (or unbounded) saturate any nonzero x.
func shlBound(x, s Bound) Bound {
	if x.Inf == 0 && x.V == 0 {
		return Finite(0)
	}
	if s.isNegInf() || (s.Inf == 0 && s.V < 0) {
		// A negative shift amount panics at runtime; treat the corner as
		// no-shift so it cannot mask a real overflow corner.
		s = Finite(0)
	}
	sign := int8(1)
	if x.isNegInf() || (x.Inf == 0 && x.V < 0) {
		sign = -1
	}
	if x.Inf != 0 || s.isPosInf() || s.V > 62 {
		return Bound{Inf: sign}
	}
	v := x.V
	sh := uint(s.V)
	if v > 0 && v > math.MaxInt64>>sh {
		return PosInf
	}
	if v < 0 && v < math.MinInt64>>sh {
		return NegInf
	}
	return Finite(v << sh)
}

// An Interval is a set of int64 values [Lo, Hi]. The zero Interval is
// NOT meaningful; use Top/Const/Range constructors. An empty interval
// (Lo > Hi) can arise from refinement against an impossible branch and
// means the path is dead.
type Interval struct {
	Lo, Hi Bound
}

func Top() Interval               { return Interval{NegInf, PosInf} }
func Const(v int64) Interval      { return Interval{Finite(v), Finite(v)} }
func Range(lo, hi int64) Interval { return Interval{Finite(lo), Finite(hi)} }

// IsTop reports whether no information is known.
func (i Interval) IsTop() bool { return i.Lo.isNegInf() && i.Hi.isPosInf() }

// IsEmpty reports a contradiction (unreachable refinement).
func (i Interval) IsEmpty() bool { return i.Lo.cmp(i.Hi) > 0 }

// Bounded reports whether every value fits in a finite int64 range —
// the test overflowcalc uses: an arithmetic result that is NOT Bounded
// can exceed int for some representable input.
func (i Interval) Bounded() bool { return i.Lo.Inf == 0 && i.Hi.Inf == 0 }

// MayBeNegative reports whether the interval admits a value < 0.
func (i Interval) MayBeNegative() bool {
	return i.Lo.isNegInf() || (i.Lo.Inf == 0 && i.Lo.V < 0)
}

// Join is the lattice union (smallest interval containing both).
func (i Interval) Join(o Interval) Interval {
	if i.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return i
	}
	return Interval{minBound(i.Lo, o.Lo), maxBound(i.Hi, o.Hi)}
}

// Widen jumps a growing bound straight to infinity so loops terminate.
func (i Interval) Widen(next Interval) Interval {
	if i.IsEmpty() {
		return next
	}
	if next.IsEmpty() {
		return i
	}
	w := i
	if next.Lo.cmp(i.Lo) < 0 {
		w.Lo = NegInf
	}
	if next.Hi.cmp(i.Hi) > 0 {
		w.Hi = PosInf
	}
	return w
}

// WidenTo is Widen with thresholds: a growing bound jumps to the
// nearest enclosing threshold instead of straight to infinity, so a
// bound that merely climbs back to a program constant (a guard like
// k <= 30 transiently over-narrowed by a loop-exit refinement) is not
// mistaken for unbounded growth. thresholds must be sorted ascending;
// a bound beyond every threshold still widens to infinity, keeping
// termination (each step strictly advances along a finite set).
func (i Interval) WidenTo(next Interval, thresholds []int64) Interval {
	if i.IsEmpty() {
		return next
	}
	if next.IsEmpty() {
		return i
	}
	w := i
	if next.Lo.cmp(i.Lo) < 0 {
		w.Lo = NegInf
		if !next.Lo.isNegInf() {
			for idx := len(thresholds) - 1; idx >= 0; idx-- {
				if thresholds[idx] <= next.Lo.V {
					w.Lo = Finite(thresholds[idx])
					break
				}
			}
		}
	}
	if next.Hi.cmp(i.Hi) > 0 {
		w.Hi = PosInf
		if !next.Hi.isPosInf() {
			for _, t := range thresholds {
				if t >= next.Hi.V {
					w.Hi = Finite(t)
					break
				}
			}
		}
	}
	return w
}

// Meet intersects (used by branch refinement).
func (i Interval) Meet(o Interval) Interval {
	return Interval{maxBound(i.Lo, o.Lo), minBound(i.Hi, o.Hi)}
}

func (i Interval) Add(o Interval) Interval {
	if i.IsEmpty() || o.IsEmpty() {
		return i
	}
	return Interval{addBound(i.Lo, o.Lo), addBound(i.Hi, o.Hi)}
}

func (i Interval) Neg() Interval {
	if i.IsEmpty() {
		return i
	}
	neg := func(b Bound) Bound {
		if b.Inf != 0 {
			return Bound{Inf: -b.Inf}
		}
		if b.V == math.MinInt64 {
			return PosInf
		}
		return Finite(-b.V)
	}
	return Interval{neg(i.Hi), neg(i.Lo)}
}

func (i Interval) Sub(o Interval) Interval { return i.Add(o.Neg()) }

func (i Interval) Mul(o Interval) Interval {
	if i.IsEmpty() || o.IsEmpty() {
		return i
	}
	c := [4]Bound{
		mulBound(i.Lo, o.Lo), mulBound(i.Lo, o.Hi),
		mulBound(i.Hi, o.Lo), mulBound(i.Hi, o.Hi),
	}
	lo, hi := c[0], c[0]
	for _, b := range c[1:] {
		lo = minBound(lo, b)
		hi = maxBound(hi, b)
	}
	return Interval{lo, hi}
}

// Shl computes i << o with the shift amount clamped at 0 (negative
// shift panics at runtime; the interval reflects the surviving paths).
func (i Interval) Shl(o Interval) Interval {
	if i.IsEmpty() || o.IsEmpty() {
		return i
	}
	c := [4]Bound{
		shlBound(i.Lo, o.Lo), shlBound(i.Lo, o.Hi),
		shlBound(i.Hi, o.Lo), shlBound(i.Hi, o.Hi),
	}
	lo, hi := c[0], c[0]
	for _, b := range c[1:] {
		lo = minBound(lo, b)
		hi = maxBound(hi, b)
	}
	return Interval{lo, hi}
}

// Shr computes i >> o. Right shift never overflows; unknown operands
// still shrink toward zero, so the result brackets the operand when the
// shift amount is unknown.
func (i Interval) Shr(o Interval) Interval {
	if i.IsEmpty() || o.IsEmpty() {
		return i
	}
	shr := func(x, s Bound) Bound {
		if x.Inf != 0 {
			return x
		}
		if s.Inf != 0 || s.V < 0 || s.V > 63 {
			if x.V >= 0 {
				return Finite(0)
			}
			return Finite(-1)
		}
		return Finite(x.V >> uint(s.V))
	}
	// For x >= 0 the biggest result uses the smallest shift; for x < 0
	// the ordering flips. Take corners and min/max to stay sound.
	c := [4]Bound{shr(i.Lo, o.Lo), shr(i.Lo, o.Hi), shr(i.Hi, o.Lo), shr(i.Hi, o.Hi)}
	lo, hi := c[0], c[0]
	for _, b := range c[1:] {
		lo = minBound(lo, b)
		hi = maxBound(hi, b)
	}
	return Interval{lo, hi}
}

// Div computes i / o (Go truncated division). Division cannot overflow
// except MinInt64 / -1, which saturates.
func (i Interval) Div(o Interval) Interval {
	if i.IsEmpty() || o.IsEmpty() {
		return i
	}
	// If the divisor may be zero the runtime panics on that path; the
	// result describes the surviving paths, but with an unknown-sign
	// divisor the quotient direction is unknown.
	if o.MayBeNegative() && o.Hi.cmp(Finite(0)) >= 0 {
		return Top()
	}
	div := func(x, y Bound) Bound {
		if y.Inf == 0 && y.V == 0 {
			// Excluded path; pick the adjacent divisor magnitude.
			if o.Lo.cmp(Finite(0)) >= 0 {
				y = Finite(1)
			} else {
				y = Finite(-1)
			}
		}
		if x.Inf != 0 {
			if y.Inf != 0 {
				return Finite(0) // ∞/∞ corner: magnitude unknown, bracketed by others
			}
			if (x.Inf > 0) == (y.V > 0) {
				return PosInf
			}
			return NegInf
		}
		if y.Inf != 0 {
			return Finite(0)
		}
		if x.V == math.MinInt64 && y.V == -1 {
			return PosInf
		}
		return Finite(x.V / y.V)
	}
	c := [4]Bound{div(i.Lo, o.Lo), div(i.Lo, o.Hi), div(i.Hi, o.Lo), div(i.Hi, o.Hi)}
	lo, hi := c[0], c[0]
	for _, b := range c[1:] {
		lo = minBound(lo, b)
		hi = maxBound(hi, b)
	}
	return Interval{lo, hi}
}

// Rem computes i % o. For a positive divisor bounded by d the result is
// within (-d, d), and non-negative when the dividend is.
func (i Interval) Rem(o Interval) Interval {
	if i.IsEmpty() || o.IsEmpty() {
		return i
	}
	if !o.Bounded() {
		return Top()
	}
	d := o.Hi.V
	if -o.Lo.V > d {
		d = -o.Lo.V
	}
	if d <= 0 {
		return Top()
	}
	lo := int64(0)
	if i.MayBeNegative() {
		lo = -(d - 1)
	}
	return Range(lo, d-1)
}

// And computes i & o. The only precision kept is the common important
// case: both operands non-negative means the result is within [0,
// min(hi_i, hi_o)].
func (i Interval) And(o Interval) Interval {
	if i.IsEmpty() || o.IsEmpty() {
		return i
	}
	if !i.MayBeNegative() && !o.MayBeNegative() {
		return Interval{Finite(0), minBound(i.Hi, o.Hi)}
	}
	return Top()
}

// ClampNonNeg is the effect of a conversion to an unsigned type on a
// value that is then only compared/shifted: a possibly-negative operand
// becomes a huge unsigned value, so the interval explodes to [0, +∞].
// A provably non-negative operand passes through unchanged.
func (i Interval) ClampNonNeg() Interval {
	if i.IsEmpty() {
		return i
	}
	if i.MayBeNegative() {
		return Interval{Finite(0), PosInf}
	}
	return i
}

func (b Bound) String() string {
	switch {
	case b.Inf < 0:
		return "-inf"
	case b.Inf > 0:
		return "+inf"
	}
	return strconv.FormatInt(b.V, 10)
}

func (i Interval) String() string {
	if i.IsEmpty() {
		return "[empty]"
	}
	return "[" + i.Lo.String() + "," + i.Hi.String() + "]"
}
