package atomicmix_test

import (
	"testing"

	"bfvlsi/internal/lint/analysistest"
	"bfvlsi/internal/lint/atomicmix"
)

func TestAtomicmix(t *testing.T) {
	analysistest.Run(t, "testdata", atomicmix.Analyzer, "mixed")
}
