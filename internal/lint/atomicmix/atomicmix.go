// Package atomicmix implements the bflint analyzer forbidding mixed
// atomic and plain access to the same variable: once any code in the
// package touches a field or package-level variable through sync/atomic
// (atomic.AddInt64(&s.hits, 1), atomic.LoadUint32(&flag), ...), every
// other read and write of it must also go through sync/atomic — a plain
// access elsewhere is a data race the memory model gives no meaning to,
// and exactly the bug the /statsz counter pattern invites.
//
// Struct-typed atomics (atomic.Int64 and friends) are immune by
// construction — their value is only reachable through methods — so the
// analyzer concerns itself with the older &field calling convention.
// Composite-literal keys (construction before sharing) and _test.go
// files are exempt. The check is package-scoped: atomic use in another
// package of the same field is invisible (DESIGN.md §12).
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"

	"bfvlsi/internal/lint/analysis"
)

// Analyzer forbids plain access to variables used with sync/atomic.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: "a field accessed via sync/atomic anywhere in the package may never be read or " +
		"written plainly elsewhere; mixed access is an unsynchronised race",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	// Pass 1: every variable that is the &-operand of a sync/atomic
	// call, with one representative position for the message.
	atomicAt := map[types.Object]token.Pos{}
	// operands marks the identifiers inside those calls, so pass 2 does
	// not report the atomic accesses themselves.
	operands := map[*ast.Ident]bool{}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass.TypesInfo, call) {
				return true
			}
			for _, arg := range call.Args {
				u, ok := unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				id := accessIdent(u.X)
				if id == nil {
					continue
				}
				obj := pass.TypesInfo.ObjectOf(id)
				if _, isVar := obj.(*types.Var); !isVar {
					continue
				}
				if _, seen := atomicAt[obj]; !seen {
					atomicAt[obj] = call.Pos()
				}
				operands[id] = true
			}
			return true
		})
	}
	if len(atomicAt) == 0 {
		return nil, nil
	}

	// Pass 2: any other use of those variables is a plain access.
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		skipKeys := compositeKeys(f)
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || operands[id] || skipKeys[id] {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			firstAtomic, ok := atomicAt[obj]
			if !ok {
				return true
			}
			first := pass.Fset.Position(firstAtomic)
			pass.Reportf(id.Pos(),
				"%s is accessed with sync/atomic (e.g. %s:%d) but read or written plainly here; "+
					"every access must go through sync/atomic (or migrate the field to atomic.Int64)",
				id.Name, shortName(first.Filename), first.Line)
			return true
		})
	}
	return nil, nil
}

// isAtomicCall reports whether the call is a sync/atomic package
// function (AddT, LoadT, StoreT, SwapT, CompareAndSwapT).
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkgID, ok := unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[pkgID].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

// accessIdent returns the identifier naming the accessed variable: the
// Sel of a field selector, or a bare identifier.
func accessIdent(e ast.Expr) *ast.Ident {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return e.Sel
	}
	return nil
}

// compositeKeys collects the key identifiers of struct composite
// literals (s := stats{hits: 0}): construction, not shared access.
func compositeKeys(f *ast.File) map[*ast.Ident]bool {
	keys := map[*ast.Ident]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		for _, elt := range cl.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok {
					keys[id] = true
				}
			}
		}
		return true
	})
	return keys
}

func shortName(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
