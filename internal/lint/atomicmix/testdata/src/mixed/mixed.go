// Package mixed is the atomicmix fixture: counters touched through
// sync/atomic must never be read or written plainly elsewhere.
package mixed

import "sync/atomic"

type stats struct {
	hits   int64
	misses int64
	plain  int64
}

var flag uint32

func bump(s *stats) {
	atomic.AddInt64(&s.hits, 1)
	atomic.AddInt64(&s.misses, 1)
	atomic.StoreUint32(&flag, 1)
}

// Good: atomic reads of atomic fields.
func read(s *stats) (int64, int64) {
	return atomic.LoadInt64(&s.hits), atomic.LoadInt64(&s.misses)
}

// Good: a field never touched atomically may be used plainly.
func plainOnly(s *stats) int64 {
	s.plain++
	return s.plain
}

// Bad: plain reads and writes of atomically-accessed variables.
func leak(s *stats) int64 {
	s.hits++        // want `hits is accessed with sync/atomic`
	total := s.hits // want `hits is accessed with sync/atomic`
	if flag == 1 {  // want `flag is accessed with sync/atomic`
		total += s.misses // want `misses is accessed with sync/atomic`
	}
	return total
}

// Good: construction via composite literal is not shared access.
func fresh() *stats {
	return &stats{hits: 0, misses: 0}
}
