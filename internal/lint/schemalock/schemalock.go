// Package schemalock defines an Analyzer pinning the wire/snapshot
// field schemas to the committed schema.lock manifest: every
// MarshalBinary/UnmarshalBinary type's field names/types/order are
// fingerprinted deterministically and compared — together with the
// version byte its encoder constructor passes — against the manifest
// entry. Changing a type's field set without bumping its version
// constant, or without regenerating the manifest via
// `bflint -writeschema`, is a lint error; so is a manifest that has
// drifted from the code in either direction.
package schemalock

import (
	"os"
	"sort"

	"bfvlsi/internal/lint/analysis"
	"bfvlsi/internal/lint/schema"
)

var Analyzer = &analysis.Analyzer{
	Name: "schemalock",
	Doc: "check every MarshalBinary/UnmarshalBinary type's field schema " +
		"fingerprint and version byte against the committed schema.lock " +
		"manifest (regenerate with `bflint -writeschema`); a field-set change " +
		"must bump the type's version constant",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	marshalers := schema.Marshalers(pass.Pkg, pass.TypesInfo, pass.Files)
	var nonTest []*schema.Marshaler
	for _, m := range marshalers {
		if !pass.InTestFile(m.Marshal.Pos()) && !pass.InTestFile(m.Unmarshal.Pos()) {
			nonTest = append(nonTest, m)
		}
	}
	if len(nonTest) == 0 {
		return nil, nil
	}
	pkgPos := pass.Files[0].Package
	dir := pkgDir(pass)
	path := schema.FindManifest(dir)
	if path == "" {
		pass.Reportf(pkgPos, "package %s has binary marshalers but no %s manifest was found: generate one with `bflint -writeschema`",
			pass.Pkg.Path(), schema.ManifestName)
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		pass.Reportf(pkgPos, "cannot read schema manifest %s: %v", path, err)
		return nil, nil
	}
	manifest, err := schema.ParseManifest(data)
	if err != nil {
		pass.Reportf(pkgPos, "cannot parse schema manifest %s: %v", path, err)
		return nil, nil
	}
	present := map[string]bool{}
	for _, m := range nonTest {
		key := schema.TypeID(m.Named)
		present[key] = true
		verName, version, ok := schema.VersionOf(pass.TypesInfo, m.Marshal)
		if !ok {
			pass.Reportf(m.Marshal.Name.Pos(),
				"cannot determine the version byte of (%s).MarshalBinary: pass a constant version to the encoder constructor",
				m.TypeName.Name())
			continue
		}
		entry, inLock := manifest[key]
		if !inLock {
			pass.Reportf(m.TypeName.Pos(),
				"%s is not in %s: regenerate the manifest with `bflint -writeschema`",
				key, schema.ManifestName)
			continue
		}
		fp := schema.Fingerprint(m.Named)
		switch {
		case fp == entry.Fingerprint && version == entry.Version:
			// Locked and matching.
		case fp != entry.Fingerprint && version == entry.Version:
			pass.Reportf(m.TypeName.Pos(),
				"field schema of %s changed but its version byte %s is still %d: bump the version constant and regenerate %s with `bflint -writeschema`",
				key, verName, version, schema.ManifestName)
		default:
			pass.Reportf(m.TypeName.Pos(),
				"%s is stale for %s (version %d fingerprint %s..., code has version %d fingerprint %s...): regenerate it with `bflint -writeschema`",
				schema.ManifestName, key, entry.Version, short(entry.Fingerprint), version, short(fp))
		}
	}
	keys := make([]string, 0, len(manifest))
	for key := range manifest {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		if !present[key] && samePackage(key, pass.Pkg.Path()) {
			pass.Reportf(pkgPos,
				"%s entry %s (version %d) has no marshaler in this package: regenerate the manifest with `bflint -writeschema`",
				schema.ManifestName, key, manifest[key].Version)
		}
	}
	return nil, nil
}

// pkgDir returns the directory holding the package's first file.
func pkgDir(pass *analysis.Pass) string {
	name := pass.Fset.Position(pass.Files[0].Pos()).Filename
	if i := lastSlash(name); i >= 0 {
		return name[:i]
	}
	return "."
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' || s[i] == '\\' {
			return i
		}
	}
	return -1
}

// samePackage reports whether a manifest key (<pkgpath>.<Type>) names
// a type of pkgPath.
func samePackage(key, pkgPath string) bool {
	if len(key) <= len(pkgPath)+1 || key[:len(pkgPath)] != pkgPath || key[len(pkgPath)] != '.' {
		return false
	}
	rest := key[len(pkgPath)+1:]
	for i := 0; i < len(rest); i++ {
		if rest[i] == '/' || rest[i] == '.' {
			return false
		}
	}
	return true
}

func short(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}
