package schemalock_test

import (
	"testing"

	"bfvlsi/internal/lint/analysistest"
	"bfvlsi/internal/lint/schemalock"
)

func TestSchemalock(t *testing.T) {
	analysistest.Run(t, "testdata", schemalock.Analyzer, "b", "c", "d")
}
