// Package b is the schemalock fixture for the version-bump rule: the
// committed manifest carries this type's old fingerprint under the
// same version byte, as after a field edit without a bump.
package b

const versionT = 1

func newEnc(typ, version int) []byte { return []byte{byte(typ), byte(version)} }

type T struct { // want "field schema of b.T changed but its version byte versionT is still 1"
	A int
	B int
}

func (t *T) MarshalBinary() ([]byte, error) {
	buf := newEnc(1, versionT)
	buf = append(buf, byte(t.A), byte(t.B))
	return buf, nil
}

func (t *T) UnmarshalBinary(data []byte) error {
	t.A = int(data[2])
	t.B = int(data[3])
	return nil
}
