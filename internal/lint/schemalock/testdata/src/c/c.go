// Package c is the schemalock fixture for manifest membership drift:
// a new marshaler missing from the manifest, and a manifest entry
// whose marshaler is gone.
package c // want "entry c.Gone \\(version 1\\) has no marshaler in this package"

func newEnc(typ, version int) []byte { return []byte{byte(typ), byte(version)} }

type U struct { // want "c.U is not in schema.lock: regenerate the manifest"
	A int
}

func (u *U) MarshalBinary() ([]byte, error) {
	buf := newEnc(1, 1)
	buf = append(buf, byte(u.A))
	return buf, nil
}

func (u *U) UnmarshalBinary(data []byte) error {
	u.A = int(data[2])
	return nil
}
