// Package d is the schemalock fixture for a doubly stale manifest
// entry: both the version byte and the fingerprint disagree with the
// code, so the manifest simply needs regenerating.
package d

const versionV = 1

func newEnc(typ, version int) []byte { return []byte{byte(typ), byte(version)} }

type V struct { // want "schema.lock is stale for d.V \\(version 2 fingerprint 222222222222"
	A int
}

func (v *V) MarshalBinary() ([]byte, error) {
	buf := newEnc(1, versionV)
	buf = append(buf, byte(v.A))
	return buf, nil
}

func (v *V) UnmarshalBinary(data []byte) error {
	v.A = int(data[2])
	return nil
}
