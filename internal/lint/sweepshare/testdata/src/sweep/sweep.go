// Package sweep is the sweepshare fixture: goroutine fan-outs in every
// ownership shape the analyzer distinguishes — racy captured writes,
// disjoint indexed writes, mutex-guarded accumulation, and channel
// hand-off.
package sweep

import "sync"

type point struct{ x, y int }

// Bad: unsynchronised read-modify-write of a captured scalar.
func badScalar(n int) int {
	var wg sync.WaitGroup
	total := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			total++ // want `goroutine writes captured variable total`
		}()
	}
	wg.Wait()
	return total
}

// Bad: workers share the index variable, so they race on the same slot
// and on the index itself.
func badSharedIndex(n int) []point {
	out := make([]point, n)
	var wg sync.WaitGroup
	idx := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[idx] = point{x: idx} // want `goroutine writes out\[\.\.\.\] with a captured index`
			idx++                    // want `goroutine writes captured variable idx`
		}()
	}
	wg.Wait()
	return out
}

// Bad: map writes race even on distinct keys.
func badMap(n int) map[int]int {
	m := map[int]int{}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m[i] = i * i // want `goroutine writes captured map m`
		}(i)
	}
	wg.Wait()
	return m
}

// Bad: field write on a captured struct pointer.
func badField(p *point) {
	done := make(chan struct{})
	go func() {
		p.x = 1 // want `goroutine writes field x of captured p`
		close(done)
	}()
	<-done
}

// Good: each worker owns the slot named by its literal parameter.
func goodParamIndex(n int) []point {
	out := make([]point, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = point{x: i}
		}(i)
	}
	wg.Wait()
	return out
}

// Good: the channel hands each index to exactly one worker, and the
// range variable is goroutine-local.
func goodChannelWorker(n int) []point {
	out := make([]point, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = point{x: i}
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// Good: mutex-guarded shared accumulation.
func goodMutex(n int) int {
	var mu sync.Mutex
	var wg sync.WaitGroup
	total := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mu.Lock()
			defer mu.Unlock()
			total += i
		}(i)
	}
	wg.Wait()
	return total
}

// Good: results travel over a channel; the goroutine writes nothing it
// does not own.
func goodChannelResults(n int) int {
	results := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			results <- i * 2
		}(i)
	}
	total := 0
	for i := 0; i < n; i++ {
		total += <-results
	}
	return total
}

// Good: the worker-pool shape of the repo's sweep drivers — the
// goroutine body only calls the supplied function.
func goodForEach(n int, f func(int)) {
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// ---- v2: interprocedural cases ----

func accumulate(sum *int, d int) { *sum += d }

func record(m map[int]int, k, v int) { m[k] = v }

func store(out []point, i int) { out[i] = point{x: i} }

func guardedAccumulate(mu *sync.Mutex, sum *int, d int) {
	mu.Lock()
	*sum += d
	mu.Unlock()
}

type tally struct{ n int }

func (t *tally) add(d int) { t.n += d }

// Bad: the racy write hides inside a called function.
func badCallPtr(n int) int {
	var wg sync.WaitGroup
	total := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			accumulate(&total, i) // want `goroutine calls accumulate, which writes through captured total`
		}(i)
	}
	wg.Wait()
	return total
}

// Bad: map write through a helper.
func badCallMap(n int) map[int]int {
	m := map[int]int{}
	done := make(chan struct{})
	go func() {
		record(m, 1, 2) // want `goroutine calls record, which writes captured map m`
		close(done)
	}()
	<-done
	return m
}

// Bad: receiver write through a method call.
func badCallMethod(t *tally, n int) {
	done := make(chan struct{})
	go func() {
		t.add(n) // want `goroutine calls add, which writes through captured t`
		close(done)
	}()
	<-done
}

// Bad: the helper indexes with a variable the goroutines share.
func badCallSharedIndex(n int) []point {
	out := make([]point, n)
	var wg sync.WaitGroup
	idx := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			store(out, idx) // want `goroutine calls store, which writes out\[\.\.\.\] with a captured index`
		}()
	}
	wg.Wait()
	return out
}

// Good: the helper indexes with the goroutine's own parameter.
func goodCallParamIndex(n int) []point {
	out := make([]point, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			store(out, i)
		}(i)
	}
	wg.Wait()
	return out
}

// Good: the helper locks around its write.
func goodCallGuarded(n int) int {
	var mu sync.Mutex
	var wg sync.WaitGroup
	total := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			guardedAccumulate(&mu, &total, i)
		}(i)
	}
	wg.Wait()
	return total
}

// Bad: `go f(args)` with a package-local target writing its pointer arg.
func badGoDirect(n int) int {
	var wg sync.WaitGroup
	total := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go accumulate(&total, i) // want `goroutine calls accumulate, which writes through shared total`
	}
	wg.Wait()
	return total
}

// Good: `go f(out, i)` — the index travels as a launch-time copy, so
// each goroutine owns its slot.
func goodGoDirectSlots(n int) []point {
	out := make([]point, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go store(out, i)
	}
	wg.Wait()
	return out
}

// Good: &out[i] is a distinct slot per launch.
func goodGoDirectPtrSlot(n int) []int {
	out := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go accumulate(&out[i], i)
	}
	wg.Wait()
	return out
}

// Bad: a bound closure launched by name is checked like a literal.
func badBoundClosure(n int) int {
	total := 0
	var wg sync.WaitGroup
	work := func(i int) {
		defer wg.Done()
		total += i // want `goroutine writes captured variable total`
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go work(i)
	}
	wg.Wait()
	return total
}
