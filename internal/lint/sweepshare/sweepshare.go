// Package sweepshare implements the bflint analyzer guarding the
// parameter-sweep fan-outs: the sweep drivers launch worker goroutines
// over shared result slices, and a write from a goroutine to a captured
// variable without mutex or channel ownership is a data race that -race
// only catches when the schedule cooperates. The analyzer statically
// flags, inside every `go func() { ... }()` literal,
//
//   - assignments and ++/-- on variables captured from the enclosing
//     function,
//   - writes through captured maps,
//   - indexed writes out[i] = ... where the INDEX is also captured
//     (the sanctioned worker pattern indexes with a goroutine-local
//     variable — a literal parameter or a channel-fed loop variable —
//     so disjoint workers never touch the same element),
//
// while accepting mutex-guarded writes (a .Lock() call precedes the
// write inside the literal) and channel sends (ownership transfer).
//
// v2 is interprocedural (internal/lint/callgraph): a captured variable
// handed to a package-local function that writes through it — a
// pointer, map, or receiver write, summarized through up to
// callgraph.SummaryRounds call edges — is flagged at the call, and
// `go f(x)` statements whose target is a bound closure or package-local
// function are checked like literals. Indexed writes remain sanctioned
// when the index travels as a call argument (a launch-time copy is
// goroutine-local by construction).
package sweepshare

import (
	"go/ast"
	"go/token"
	"go/types"

	"bfvlsi/internal/lint/analysis"
	"bfvlsi/internal/lint/callgraph"
)

// Analyzer flags unsynchronised writes to captured variables inside
// goroutine literals.
var Analyzer = &analysis.Analyzer{
	Name: "sweepshare",
	Doc: "forbid writes to captured variables from `go` statements without mutex or " +
		"channel ownership, including writes reached through called functions; sweep " +
		"workers must write disjoint indices via goroutine-local indexes or hand " +
		"results over a channel",
	Run: run,
}

// checker carries the per-package state of one run.
type checker struct {
	pass  *analysis.Pass
	graph *callgraph.Graph
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{pass: pass, graph: callgraph.Build(pass.Pkg, pass.TypesInfo, pass.Files)}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if pass.InTestFile(gs.Pos()) {
				return true
			}
			switch fun := unparen(gs.Call.Fun).(type) {
			case *ast.FuncLit:
				c.checkGoroutine(fun)
			case *ast.Ident:
				if lit := c.graph.ClosureOf(fun); lit != nil {
					c.checkGoroutine(lit)
				} else {
					c.checkGoCall(gs.Call)
				}
			default:
				c.checkGoCall(gs.Call)
			}
			return true
		})
	}
	return nil, nil
}

// checkGoroutine inspects one goroutine literal body.
func (c *checker) checkGoroutine(lit *ast.FuncLit) {
	pass := c.pass
	local := localObjects(pass.TypesInfo, lit)
	locked := lockPositions(pass.TypesInfo, lit)

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A nested literal runs on this goroutine unless launched
			// itself; its writes count, with its own params/locals added
			// to the local set.
			c.checkNested(n, local, locked)
			return false
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkWrite(pass, lhs, local, locked)
			}
		case *ast.IncDecStmt:
			checkWrite(pass, n.X, local, locked)
		case *ast.CallExpr:
			c.checkCall(n, local, locked)
		}
		return true
	})
}

// checkNested folds a nested (non-go) literal's own declarations into
// the local set and recurses.
func (c *checker) checkNested(lit *ast.FuncLit, outer map[types.Object]bool, locked []token.Pos) {
	pass := c.pass
	local := localObjects(pass.TypesInfo, lit)
	for o := range outer {
		local[o] = true
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.checkNested(n, local, locked)
			return false
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkWrite(pass, lhs, local, locked)
			}
		case *ast.IncDecStmt:
			checkWrite(pass, n.X, local, locked)
		case *ast.CallExpr:
			c.checkCall(n, local, locked)
		}
		return true
	})
}

// checkCall traces a call inside a goroutine body through the callee's
// effect summary: an unguarded pointer, map, or receiver write through
// an argument whose root is captured races exactly like the literal
// write would.
func (c *checker) checkCall(call *ast.CallExpr, local map[types.Object]bool, locked []token.Pos) {
	info := c.pass.TypesInfo
	for _, callee := range c.graph.CalleesOf(call) {
		eff := c.graph.EffectsOf(callee)
		for idx, pe := range eff.Params {
			arg, ok := callgraph.ArgExpr(call, idx)
			if !ok {
				continue
			}
			root := callgraph.RootIdent(arg)
			if root == nil {
				continue
			}
			obj := info.ObjectOf(root)
			if obj == nil || local[obj] {
				continue
			}
			if _, isVar := obj.(*types.Var); !isVar {
				continue
			}
			if guarded(locked, call.Pos()) {
				continue
			}
			name := callee.Func.Name()
			if pe.Writes {
				c.pass.Reportf(call.Pos(),
					"goroutine calls %s, which writes through captured %s without mutex or channel ownership; guard the write or hand results over a channel",
					name, root.Name)
			}
			if pe.WritesMap {
				c.pass.Reportf(call.Pos(),
					"goroutine calls %s, which writes captured map %s; map writes race even on distinct keys — guard with a mutex or collect over a channel",
					name, root.Name)
			}
			for _, j := range pe.SliceIndexParams {
				idxArg, ok := callgraph.ArgExpr(call, j)
				if ok && capturedIndex(info, idxArg, local) {
					c.pass.Reportf(call.Pos(),
						"goroutine calls %s, which writes %s[...] with a captured index; workers sharing an index variable race on the same slot — pass a goroutine-local index",
						name, root.Name)
				}
			}
		}
	}
}

// checkGoCall handles `go f(args)` with a non-literal target: arguments
// are evaluated at launch, so plain values (including slice indices)
// are goroutine-local copies, but pointers, maps, and receivers still
// alias the launcher's memory and inherit the callee's write effects.
func (c *checker) checkGoCall(call *ast.CallExpr) {
	info := c.pass.TypesInfo
	for _, callee := range c.graph.CalleesOf(call) {
		eff := c.graph.EffectsOf(callee)
		for idx, pe := range eff.Params {
			if !pe.Writes && !pe.WritesMap {
				continue // slice-slot writes index a launch-time copy: disjoint by construction
			}
			arg, ok := callgraph.ArgExpr(call, idx)
			if !ok {
				continue
			}
			if pe.Writes && disjointPtrArg(info, arg) {
				continue // &out[i]: a distinct slot per launch
			}
			root := callgraph.RootIdent(arg)
			if root == nil {
				continue
			}
			obj := info.ObjectOf(root)
			if _, isVar := obj.(*types.Var); !isVar {
				continue
			}
			name := callee.Func.Name()
			if pe.Writes {
				c.pass.Reportf(call.Pos(),
					"goroutine calls %s, which writes through shared %s without mutex or channel ownership; guard the write or hand results over a channel",
					name, root.Name)
			}
			if pe.WritesMap {
				c.pass.Reportf(call.Pos(),
					"goroutine calls %s, which writes shared map %s; map writes race even on distinct keys — guard with a mutex or collect over a channel",
					name, root.Name)
			}
		}
	}
}

// disjointPtrArg reports whether the argument is the address of a slice
// or array element (&out[i]): with the index evaluated at launch, each
// goroutine receives its own slot.
func disjointPtrArg(info *types.Info, arg ast.Expr) bool {
	u, ok := unparen(arg).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return false
	}
	ix, ok := unparen(u.X).(*ast.IndexExpr)
	if !ok {
		return false
	}
	tv, ok := info.Types[ix.X]
	if !ok {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Array, *types.Pointer:
		return true
	}
	return false
}

// localObjects collects every object declared within the literal
// (parameters, named results, := and var declarations, range variables).
func localObjects(info *types.Info, lit *ast.FuncLit) map[types.Object]bool {
	local := map[types.Object]bool{}
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				local[obj] = true
			}
		}
		return true
	})
	return local
}

// lockPositions records the positions of .Lock()/.RLock() calls inside
// the literal; a write after a lock call is treated as guarded. This is
// a flow-insensitive approximation — good enough to accept the
// `mu.Lock(); defer mu.Unlock()` and `mu.Lock(); ...; mu.Unlock()`
// idioms without a full lockset analysis.
func lockPositions(info *types.Info, lit *ast.FuncLit) []token.Pos {
	var locks []token.Pos
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if name != "Lock" && name != "RLock" {
			return true
		}
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				locks = append(locks, call.Pos())
			}
		}
		return true
	})
	return locks
}

func guarded(locked []token.Pos, pos token.Pos) bool {
	for _, l := range locked {
		if l < pos {
			return true
		}
	}
	return false
}

// checkWrite classifies one lvalue inside the goroutine.
func checkWrite(pass *analysis.Pass, lhs ast.Expr, local map[types.Object]bool, locked []token.Pos) {
	switch lhs := unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		obj := pass.TypesInfo.ObjectOf(lhs)
		if obj == nil || local[obj] {
			return
		}
		if _, ok := obj.(*types.Var); !ok {
			return
		}
		if guarded(locked, lhs.Pos()) {
			return
		}
		pass.Reportf(lhs.Pos(),
			"goroutine writes captured variable %s without mutex or channel ownership; "+
				"guard it with a mutex or send the result over a channel", lhs.Name)
	case *ast.IndexExpr:
		// out[i] = ...: fine when the index is goroutine-local (disjoint
		// worker slots); racy when the index itself is captured. Map
		// writes race on the map's internals regardless of key locality.
		base, bok := unparen(lhs.X).(*ast.Ident)
		if !bok {
			return
		}
		baseObj := pass.TypesInfo.ObjectOf(base)
		if baseObj == nil || local[baseObj] {
			return
		}
		if guarded(locked, lhs.Pos()) {
			return
		}
		if tv, ok := pass.TypesInfo.Types[lhs.X]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				pass.Reportf(lhs.Pos(),
					"goroutine writes captured map %s; map writes race even on distinct keys — guard with a mutex or collect over a channel", base.Name)
				return
			}
		}
		if capturedIndex(pass.TypesInfo, lhs.Index, local) {
			pass.Reportf(lhs.Pos(),
				"goroutine writes %s[...] with a captured index; workers sharing an index variable race on the same slot — use a goroutine-local index (literal parameter or channel-fed loop variable)", base.Name)
		}
	case *ast.SelectorExpr:
		base, bok := unparen(rootExpr(lhs)).(*ast.Ident)
		if !bok {
			return
		}
		baseObj := pass.TypesInfo.ObjectOf(base)
		if baseObj == nil || local[baseObj] {
			return
		}
		if guarded(locked, lhs.Pos()) {
			return
		}
		pass.Reportf(lhs.Pos(),
			"goroutine writes field %s of captured %s without mutex or channel ownership; guard it or hand the result over a channel",
			lhs.Sel.Name, base.Name)
	case *ast.StarExpr:
		base, bok := unparen(lhs.X).(*ast.Ident)
		if !bok {
			return
		}
		baseObj := pass.TypesInfo.ObjectOf(base)
		if baseObj == nil || local[baseObj] {
			return
		}
		if guarded(locked, lhs.Pos()) {
			return
		}
		pass.Reportf(lhs.Pos(),
			"goroutine writes through captured pointer %s without mutex or channel ownership", base.Name)
	}
}

// capturedIndex reports whether the index expression reads any captured
// (non-local) variable.
func capturedIndex(info *types.Info, idx ast.Expr, local map[types.Object]bool) bool {
	captured := false
	ast.Inspect(idx, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		// Constants and functions are immutable; mutable captured vars
		// are the hazard.
		if _, isVar := obj.(*types.Var); !isVar || local[obj] {
			return true
		}
		captured = true
		return true
	})
	return captured
}

// rootExpr descends selector chains to the base expression (a.b.c -> a).
func rootExpr(sel *ast.SelectorExpr) ast.Expr {
	x := unparen(sel.X)
	for {
		s, ok := x.(*ast.SelectorExpr)
		if !ok {
			return x
		}
		x = unparen(s.X)
	}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
