package sweepshare_test

import (
	"testing"

	"bfvlsi/internal/lint/analysistest"
	"bfvlsi/internal/lint/sweepshare"
)

func TestSweepshare(t *testing.T) {
	analysistest.Run(t, "testdata", sweepshare.Analyzer, "sweep")
}
