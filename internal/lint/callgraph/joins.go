package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
)

// JoinsIn reports whether a join/cancel signal is reachable from the
// given body (typically a goroutine literal's): a direct channel
// operation, wg.Done/Wait, ctx.Done, a call to a package-local function
// whose summary reaches one, a call through a bound closure containing
// one, or an opaque call visibly handed a channel, context.Context, or
// *sync.WaitGroup (the cross-package benefit of the doubt). Nested `go`
// statements do not count — their signals join the nested goroutine,
// not this one.
func (g *Graph) JoinsIn(body ast.Node) bool {
	return g.joinsIn(body, 0, map[*ast.FuncLit]bool{})
}

func (g *Graph) joinsIn(body ast.Node, depth int, seen map[*ast.FuncLit]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := g.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if g.callJoins(n, depth, seen) {
				found = true
			}
		}
		return true
	})
	return found
}

// CallJoins reports whether one call can reach a join/cancel signal —
// the entry point goleak uses for `go f(x)` statements with a
// non-literal target.
func (g *Graph) CallJoins(call *ast.CallExpr) bool {
	return g.callJoins(call, 0, map[*ast.FuncLit]bool{})
}

func (g *Graph) callJoins(call *ast.CallExpr, depth int, seen map[*ast.FuncLit]bool) bool {
	var e Effects
	g.classifyJoinCall(&e, call)
	if e.Joins() {
		return true
	}
	callees, _ := g.resolveCallees(call)
	for _, c := range callees {
		if g.EffectsOf(c).Joins() {
			return true
		}
	}
	if id, ok := Unparen(call.Fun).(*ast.Ident); ok && depth < SummaryRounds {
		if lit := g.ClosureOf(id); lit != nil && !seen[lit] {
			seen[lit] = true
			if g.joinsIn(lit.Body, depth+1, seen) {
				return true
			}
		}
	}
	// A channel, context, or WaitGroup visibly crossing the call is
	// taken as the join discipline living on the other side.
	exprs := append([]ast.Expr{}, call.Args...)
	if sel, ok := Unparen(call.Fun).(*ast.SelectorExpr); ok {
		exprs = append(exprs, sel.X)
	}
	for _, a := range exprs {
		if tv, ok := g.Info.Types[a]; ok && TypeCarriesJoin(tv.Type) {
			return true
		}
	}
	return false
}

// TypeCarriesJoin reports whether a value of this type carries a join
// discipline across an opaque call: a channel, a context.Context, or a
// *sync.WaitGroup.
func TypeCarriesJoin(t types.Type) bool {
	if isNamed(t, "context", "Context") {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Chan:
		return true
	case *types.Pointer:
		return isNamed(u.Elem(), "sync", "WaitGroup")
	}
	return false
}

func isNamed(t types.Type, pkg, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkg && obj.Name() == name
}
