// Package callgraph is the interprocedural layer of the bflint suite:
// a class-hierarchy-analysis (CHA) style call graph over one
// type-checked package, per-function effect summaries (which parameters
// and receiver fields a function writes without holding a lock, which
// join signals a function can reach), and an intraprocedural lockset
// dataflow built on the internal/lint/cfg engine.
//
// The concurrency analyzers (lockcheck, goleak, the v2 sweepshare) sit
// on top of it. The engine is deliberately package-scoped and bounded:
//
//   - calls that leave the package are opaque (no cross-package facts
//     travel through the vet protocol), so their effects are assumed
//     absent and their join signals assumed present only when a channel,
//     context, or WaitGroup visibly crosses the call;
//   - dynamic calls through interfaces resolve CHA-style to every
//     package-local type implementing the interface, up to a fan-out
//     bound (MaxInterfaceImpls) beyond which the site is left dynamic;
//   - summaries propagate through call chains for a bounded number of
//     rounds (SummaryRounds), so a helper chain deeper than the bound
//     degrades to "no effect seen" rather than diverging;
//   - reflection and closures stored in data structures defeat the
//     graph entirely.
//
// DESIGN.md §12 records these soundness limits next to the contracts
// that tolerate them.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// MaxInterfaceImpls bounds CHA fan-out at one interface call site;
// beyond it the site stays dynamic (unresolved).
const MaxInterfaceImpls = 8

// SummaryRounds bounds effect propagation through call chains: a write
// or join signal travels at most this many call edges.
const SummaryRounds = 4

// A Key names one lock (or any access path) as seen from inside one
// function: the root object plus the dotted field path below it.
// Two paths denote the same lock exactly when their Keys are equal.
type Key struct {
	Root types.Object
	Path string // ".mu", ".inner.mu", or "" for a bare variable
}

// String renders the key for diagnostics ("c.mu").
func (k Key) String() string {
	if k.Root == nil {
		return "?" + k.Path
	}
	return k.Root.Name() + k.Path
}

// PathOf decomposes a selector chain (or bare identifier) into its root
// object and dotted path. It fails (ok=false) on anything that is not a
// pure variable path: calls, indexing, dereferences of expressions.
func PathOf(info *types.Info, e ast.Expr) (Key, bool) {
	var parts []string
	for {
		switch x := Unparen(e).(type) {
		case *ast.Ident:
			obj := info.ObjectOf(x)
			if obj == nil {
				return Key{}, false
			}
			if _, isVar := obj.(*types.Var); !isVar {
				return Key{}, false
			}
			path := ""
			for i := len(parts) - 1; i >= 0; i-- {
				path += "." + parts[i]
			}
			return Key{Root: obj, Path: path}, true
		case *ast.SelectorExpr:
			parts = append(parts, x.Sel.Name)
			e = x.X
		default:
			return Key{}, false
		}
	}
}

// Unparen strips parentheses.
func Unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// RootIdent descends a selector/index/star/paren chain to its base
// identifier (a.b[i].c -> a), or nil when the base is not an identifier.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				e = x.X
				continue
			}
			return nil
		default:
			return nil
		}
	}
}

// ---- call graph ----

// A Node is one function or method declared in the package.
type Node struct {
	Func *types.Func
	Decl *ast.FuncDecl

	calls   []*CallSite
	effects *Effects
	locks   *LockInfo
}

// A CallSite is one call expression inside a caller, with its resolved
// package-local callees. Resolved is false when the target may lie
// outside the package or past the CHA bound.
type CallSite struct {
	Caller   *Node
	Call     *ast.CallExpr
	Callees  []*Node
	Resolved bool
}

// Graph is the package call graph.
type Graph struct {
	Pkg   *types.Package
	Info  *types.Info
	Nodes map[*types.Func]*Node

	callers map[*types.Func][]*CallSite
	// closures maps local variables bound once to a function literal
	// (f := func(){...}) to that literal, for resolving `go f(x)`.
	closures map[types.Object]*ast.FuncLit

	effectsDone bool
}

// Build constructs the call graph of one package.
func Build(pkg *types.Package, info *types.Info, files []*ast.File) *Graph {
	g := &Graph{
		Pkg:      pkg,
		Info:     info,
		Nodes:    map[*types.Func]*Node{},
		callers:  map[*types.Func][]*CallSite{},
		closures: map[types.Object]*ast.FuncLit{},
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.Nodes[fn] = &Node{Func: fn, Decl: fd}
		}
	}
	for _, node := range g.Nodes {
		g.scanBody(node)
	}
	return g
}

// scanBody records the node's call sites and single-assignment closure
// bindings.
func (g *Graph) scanBody(node *Node) {
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// f := func(){...}: remember the binding unless reassigned.
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				obj := g.Info.ObjectOf(id)
				if obj == nil {
					continue
				}
				if lit, ok := Unparen(n.Rhs[i]).(*ast.FuncLit); ok && n.Tok == token.DEFINE {
					g.closures[obj] = lit
				} else if _, seen := g.closures[obj]; seen {
					// Reassigned: the binding is no longer single.
					delete(g.closures, obj)
				}
			}
		case *ast.CallExpr:
			callees, resolved := g.resolveCallees(n)
			site := &CallSite{Caller: node, Call: n, Callees: callees, Resolved: resolved}
			node.calls = append(node.calls, site)
			for _, c := range callees {
				g.callers[c.Func] = append(g.callers[c.Func], site)
			}
		}
		return true
	})
}

// NodeOf returns the node of a package-declared function, or nil.
func (g *Graph) NodeOf(fn *types.Func) *Node { return g.Nodes[fn] }

// CallersOf returns every recorded call site that may invoke fn.
func (g *Graph) CallersOf(fn *types.Func) []*CallSite { return g.callers[fn] }

// Calls returns the node's call sites.
func (n *Node) Calls() []*CallSite { return n.calls }

// CalleesOf resolves one call expression to its package-local callee
// nodes (empty for opaque cross-package or dynamic calls).
func (g *Graph) CalleesOf(call *ast.CallExpr) []*Node {
	nodes, _ := g.resolveCallees(call)
	return nodes
}

// ClosureOf resolves a local identifier bound exactly once to a
// function literal (the `f := func(){...}; go f(x)` idiom).
func (g *Graph) ClosureOf(id *ast.Ident) *ast.FuncLit {
	obj := g.Info.ObjectOf(id)
	if obj == nil {
		return nil
	}
	return g.closures[obj]
}

// resolveCallees maps one call expression to package-local nodes.
func (g *Graph) resolveCallees(call *ast.CallExpr) ([]*Node, bool) {
	switch fun := Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := g.Info.Uses[fun].(*types.Func); ok {
			if node := g.Nodes[fn]; node != nil {
				return []*Node{node}, true
			}
			return nil, false // builtin or dot-imported
		}
		return nil, false // closure variable or conversion
	case *ast.SelectorExpr:
		if sel, ok := g.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			m, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil, false
			}
			if types.IsInterface(recvType(m)) {
				return g.chaResolve(m)
			}
			if node := g.Nodes[m]; node != nil {
				return []*Node{node}, true
			}
			return nil, false
		}
		// Package-qualified call (pkg.F) or method expression.
		if fn, ok := g.Info.Uses[fun.Sel].(*types.Func); ok {
			if node := g.Nodes[fn]; node != nil {
				return []*Node{node}, true
			}
			return nil, false
		}
		return nil, false
	default:
		return nil, false
	}
}

// recvType returns the receiver type of a method, nil for functions.
func recvType(fn *types.Func) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// chaResolve finds every package-declared concrete type implementing
// the interface that declares m, and returns their implementations of
// m. Past MaxInterfaceImpls the site stays dynamic.
func (g *Graph) chaResolve(m *types.Func) ([]*Node, bool) {
	iface, ok := recvType(m).Underlying().(*types.Interface)
	if !ok {
		return nil, false
	}
	var out []*Node
	scope := g.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		T := tn.Type()
		if types.IsInterface(T) {
			continue
		}
		for _, typ := range []types.Type{T, types.NewPointer(T)} {
			if !types.Implements(typ, iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(typ, true, g.Pkg, m.Name())
			impl, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			if node := g.Nodes[impl]; node != nil {
				out = append(out, node)
				if len(out) > MaxInterfaceImpls {
					return nil, false
				}
			}
			break // T and *T share the method declaration
		}
	}
	// CHA over one package can never be complete when the interface is
	// exported (an implementation may live elsewhere), so interface
	// sites are resolved-with-residue: callees listed, Resolved false.
	return out, false
}

// IsTestFile reports whether the position lies in a _test.go file.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	f := fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// keyID renders a Key for internal set membership.
func keyID(k Key) string {
	return strconv.Itoa(int(k.Root.Pos())) + k.Path
}
