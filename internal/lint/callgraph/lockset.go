package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"bfvlsi/internal/lint/cfg"
)

// LockInfo is the result of the intraprocedural lockset analysis of one
// function body: for every statement (and every branch condition), the
// set of locks that is held on EVERY path reaching it — a forward
// must-analysis over the internal/lint/cfg graph.
//
// A lock is "held" after a direct x.Lock()/x.RLock() call on a pure
// variable path x, and released by the matching Unlock()/RUnlock().
// Deferred unlocks run at function exit and therefore do not release
// within the body. Lock calls inside `go`/`defer` statements or nested
// function literals do not affect the enclosing function's state, and
// locks taken through helper calls are invisible (a documented
// soundness limit: write the helper's callers against the helper's
// contract, not its implementation).
type LockInfo struct {
	spans []lockSpan
}

type lockSpan struct {
	pos, end token.Pos
	held     *lockset
}

// lockset is a set of Keys; nil map with all=true is the ⊤ element
// (unvisited: every lock notionally held).
type lockset struct {
	all bool
	m   map[string]Key
}

var topLockset = &lockset{all: true}

func emptyLockset() *lockset { return &lockset{m: map[string]Key{}} }

func (s *lockset) clone() *lockset {
	if s.all {
		return topLockset
	}
	m := make(map[string]Key, len(s.m))
	for k, v := range s.m {
		m[k] = v
	}
	return &lockset{m: m}
}

func (s *lockset) equal(o *lockset) bool {
	if s.all || o.all {
		return s.all == o.all
	}
	if len(s.m) != len(o.m) {
		return false
	}
	for k := range s.m {
		if _, ok := o.m[k]; !ok {
			return false
		}
	}
	return true
}

// intersect returns the meet of two states (⊤ is the identity).
func intersect(a, b *lockset) *lockset {
	if a == nil || a.all {
		return b
	}
	if b == nil || b.all {
		return a
	}
	out := emptyLockset()
	for k, v := range a.m {
		if _, ok := b.m[k]; ok {
			out.m[k] = v
		}
	}
	return out
}

// Locksets runs the analysis over one function body.
func Locksets(info *types.Info, body *ast.BlockStmt) *LockInfo {
	g := cfg.Build(body)
	in := make([]*lockset, len(g.Blocks))
	for i := range in {
		in[i] = topLockset
	}
	in[g.Entry.Index] = emptyLockset()

	li := &LockInfo{}
	record := func(pos, end token.Pos, held *lockset) {
		li.spans = append(li.spans, lockSpan{pos: pos, end: end, held: held})
	}

	// Iterate to a fixed point, then one final recording pass.
	for pass := 0; ; pass++ {
		changed := false
		final := false
		if pass > len(g.Blocks)+2 {
			final = true // safety: states only shrink, so this converges; cap anyway
		}
		for _, blk := range g.Blocks {
			state := in[blk.Index].clone()
			for _, s := range blk.Stmts {
				if final {
					record(s.Pos(), s.End(), state)
				}
				state = applyStmt(info, s, state)
			}
			for _, e := range blk.Succs {
				if e.Cond != nil && final {
					record(e.Cond.Pos(), e.Cond.End(), state)
				}
				merged := intersect(in[e.To.Index], state)
				if !merged.equal(in[e.To.Index]) {
					in[e.To.Index] = merged
					changed = true
				}
			}
		}
		if final {
			break
		}
		if !changed {
			// Converged: run one more pass that records.
			for _, blk := range g.Blocks {
				state := in[blk.Index].clone()
				for _, s := range blk.Stmts {
					record(s.Pos(), s.End(), state)
					state = applyStmt(info, s, state)
				}
				for _, e := range blk.Succs {
					if e.Cond != nil {
						record(e.Cond.Pos(), e.Cond.End(), state)
					}
				}
			}
			break
		}
	}
	return li
}

// applyStmt returns the state after executing one straight-line
// statement: direct Lock/RLock calls add their key, Unlock/RUnlock
// remove it. Range statements appear whole in their head block; their
// bodies are separate blocks, so only the range expression is scanned.
func applyStmt(info *types.Info, s ast.Stmt, state *lockset) *lockset {
	switch s := s.(type) {
	case *ast.DeferStmt, *ast.GoStmt:
		return state // runs elsewhere / later
	case *ast.RangeStmt:
		return state // body handled block-by-block
	default:
		_ = s
	}
	out := state
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if key, op, ok := lockCall(info, n); ok {
				if out == state {
					out = state.clone()
					if out.all {
						out = emptyLockset()
					}
				}
				if op {
					out.m[keyID(key)] = key
				} else {
					delete(out.m, keyID(key))
				}
			}
		}
		return true
	})
	return out
}

// lockCall recognizes x.Lock()/x.RLock() (acquire=true) and
// x.Unlock()/x.RUnlock() (acquire=false) method calls on a pure
// variable path x.
func lockCall(info *types.Info, call *ast.CallExpr) (Key, bool, bool) {
	sel, ok := Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return Key{}, false, false
	}
	var acquire bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return Key{}, false, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return Key{}, false, false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() == nil {
		return Key{}, false, false
	}
	key, ok := PathOf(info, sel.X)
	if !ok {
		return Key{}, false, false
	}
	return key, acquire, true
}

// HeldAt returns the must-held lockset at a source position: the state
// recorded for the innermost statement or branch condition containing
// it. Positions outside any recorded span (dead code) report nothing
// held.
func (li *LockInfo) HeldAt(pos token.Pos) []Key {
	var best *lockSpan
	for i := range li.spans {
		sp := &li.spans[i]
		if pos < sp.pos || pos > sp.end {
			continue
		}
		if best == nil || (sp.end-sp.pos) < (best.end-best.pos) {
			best = sp
		}
	}
	if best == nil || best.held.all {
		return nil
	}
	ids := make([]string, 0, len(best.held.m))
	for id := range best.held.m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]Key, 0, len(ids))
	for _, id := range ids {
		out = append(out, best.held.m[id])
	}
	return out
}

// Holds reports whether the named lock is held at pos.
func (li *LockInfo) Holds(pos token.Pos, key Key) bool {
	for _, k := range li.HeldAt(pos) {
		if k == key {
			return true
		}
	}
	return false
}

// AnyHeld reports whether any lock at all is held at pos.
func (li *LockInfo) AnyHeld(pos token.Pos) bool { return len(li.HeldAt(pos)) > 0 }

// Locksets returns (building on first use) the node's lockset analysis.
func (g *Graph) Locksets(n *Node) *LockInfo {
	if n.locks == nil {
		n.locks = Locksets(g.Info, n.Decl.Body)
	}
	return n.locks
}
