package callgraph

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"bfvlsi/internal/lint/load"
)

// check type-checks one source string as package p and builds its graph.
func check(t *testing.T, src string) *Graph {
	t.Helper()
	l := load.New()
	f, err := parseOne(l, src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pkg, err := l.CheckFiles("p", "", []*ast.File{f})
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return Build(pkg.Types, pkg.Info, pkg.Files)
}

func parseOne(l *load.Loader, src string) (*ast.File, error) {
	return parser.ParseFile(l.Fset, "p.go", src, parser.ParseComments)
}

// findFunc returns the graph node with the given name.
func findFunc(t *testing.T, g *Graph, name string) *Node {
	t.Helper()
	for fn, n := range g.Nodes {
		if fn.Name() == name {
			return n
		}
	}
	t.Fatalf("function %s not in graph", name)
	return nil
}

// findIdent returns the position of the first identifier with the given
// name inside the node's body (skipping the one at skip occurrences).
func findIdent(t *testing.T, n *Node, name string, skip int) token.Pos {
	t.Helper()
	var pos token.Pos
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		if pos != token.NoPos {
			return false
		}
		if id, ok := x.(*ast.Ident); ok && id.Name == name {
			if skip == 0 {
				pos = id.Pos()
				return false
			}
			skip--
		}
		return true
	})
	if pos == token.NoPos {
		t.Fatalf("ident %s not found in %s", name, n.Func.Name())
	}
	return pos
}

func TestGraphResolution(t *testing.T) {
	g := check(t, `package p

type adder interface{ add(int) }

type counter struct{ n int }

func (c *counter) add(d int) { c.n += d }

type gauge struct{ v int }

func (g *gauge) add(d int) { g.v = d }

func direct(c *counter) { c.add(1) }

func dynamic(a adder) { a.add(2) }

func chain() { direct(nil) }
`)
	direct := findFunc(t, g, "direct")
	if len(direct.Calls()) != 1 || !direct.Calls()[0].Resolved {
		t.Fatalf("direct: want 1 resolved call, got %+v", direct.Calls())
	}
	if got := direct.Calls()[0].Callees[0].Func.Name(); got != "add" {
		t.Fatalf("direct callee = %s, want add", got)
	}

	dynamic := findFunc(t, g, "dynamic")
	site := dynamic.Calls()[0]
	if site.Resolved {
		t.Fatal("interface call must stay unresolved (open world)")
	}
	if len(site.Callees) != 2 {
		t.Fatalf("CHA callees = %d, want 2 (counter, gauge)", len(site.Callees))
	}

	addImpl := direct.Calls()[0].Callees[0]
	callers := g.CallersOf(addImpl.Func)
	if len(callers) != 2 { // direct + CHA edge from dynamic
		t.Fatalf("callers of (*counter).add = %d, want 2", len(callers))
	}
}

func TestClosureBinding(t *testing.T) {
	g := check(t, `package p

func once() {
	f := func() {}
	go f()
}

func reassigned() {
	f := func() {}
	f = func() {}
	go f()
}
`)
	once := findFunc(t, g, "once")
	var goStmt *ast.GoStmt
	ast.Inspect(once.Decl.Body, func(n ast.Node) bool {
		if gs, ok := n.(*ast.GoStmt); ok {
			goStmt = gs
		}
		return true
	})
	id := goStmt.Call.Fun.(*ast.Ident)
	if g.ClosureOf(id) == nil {
		t.Fatal("single-assignment closure binding not resolved")
	}

	re := findFunc(t, g, "reassigned")
	ast.Inspect(re.Decl.Body, func(n ast.Node) bool {
		if gs, ok := n.(*ast.GoStmt); ok {
			goStmt = gs
		}
		return true
	})
	if g.ClosureOf(goStmt.Call.Fun.(*ast.Ident)) != nil {
		t.Fatal("reassigned closure must not resolve")
	}
}

func TestLocksets(t *testing.T) {
	g := check(t, `package p

import "sync"

type c struct {
	mu sync.Mutex
	n  int
}

func (x *c) good() {
	x.mu.Lock()
	x.n = 1
	x.mu.Unlock()
	x.n = 2
}

func (x *c) deferred() {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.n = 3
}

func (x *c) branchy(b bool) {
	if b {
		x.mu.Lock()
	}
	x.n = 4
}

func (x *c) bothArms(b bool) {
	if b {
		x.mu.Lock()
	} else {
		x.mu.Lock()
	}
	x.n = 5
}
`)
	muKey := func(n *Node) Key {
		recv := n.Func.Type().(*types.Signature).Recv()
		return Key{Root: recv, Path: ".mu"}
	}

	good := findFunc(t, g, "good")
	li := g.Locksets(good)
	// "n" idents in body: x.n = 1 (sel), x.n = 2. Occurrence 0 is inside
	// the locked region, the next is after Unlock.
	if !li.Holds(findIdent(t, good, "n", 0), muKey(good)) {
		t.Fatal("first write must be under the lock")
	}
	if li.Holds(findIdent(t, good, "n", 1), muKey(good)) {
		t.Fatal("write after Unlock must not be under the lock")
	}

	def := findFunc(t, g, "deferred")
	if !g.Locksets(def).Holds(findIdent(t, def, "n", 0), muKey(def)) {
		t.Fatal("deferred unlock must not release within the body")
	}

	br := findFunc(t, g, "branchy")
	if g.Locksets(br).Holds(findIdent(t, br, "n", 0), muKey(br)) {
		t.Fatal("lock on one arm only is not must-held")
	}

	both := findFunc(t, g, "bothArms")
	if !g.Locksets(both).Holds(findIdent(t, both, "n", 0), muKey(both)) {
		t.Fatal("lock on both arms is must-held at the join")
	}
}

func TestEffects(t *testing.T) {
	g := check(t, `package p

import "sync"

func setPtr(p *int) { *p = 1 }

func setMap(m map[string]int) { m["k"] = 1 }

func setSlot(s []int, i int) { s[i] = 1 }

func forward(q *int) { setPtr(q) }

func guarded(mu *sync.Mutex, p *int) {
	mu.Lock()
	*p = 2
	mu.Unlock()
}

func signal(wg *sync.WaitGroup) { defer wg.Done() }

func viaHelper(wg *sync.WaitGroup) { signal(wg) }

func d1() { d2() }
func d2() { d3() }
func d3() { d4() }
func d4() { d5() }
func d5() { d6() }
func d6(ch ...chan int) { close(ch[0]) }
`)
	ef := func(name string) *Effects { return g.EffectsOf(findFunc(t, g, name)) }

	if pe := ef("setPtr").Params[0]; pe == nil || !pe.Writes {
		t.Fatal("setPtr must report a pointer write through param 0")
	}
	if pe := ef("setMap").Params[0]; pe == nil || !pe.WritesMap {
		t.Fatal("setMap must report a map write through param 0")
	}
	if pe := ef("setSlot").Params[0]; pe == nil || len(pe.SliceIndexParams) != 1 || pe.SliceIndexParams[0] != 1 {
		t.Fatalf("setSlot must report a slice write indexed by param 1, got %+v", pe)
	}
	if pe := ef("forward").Params[0]; pe == nil || !pe.Writes {
		t.Fatal("forward must inherit setPtr's write through its own param")
	}
	if ef("guarded").Params != nil && ef("guarded").Params[1] != nil && ef("guarded").Params[1].Writes {
		t.Fatal("a mutex-guarded write is not an unguarded effect")
	}
	if !ef("signal").WaitDone {
		t.Fatal("deferred wg.Done must count as a join signal")
	}
	if !ef("viaHelper").WaitDone {
		t.Fatal("join signals must travel one call edge")
	}
	// d1 → … → d6 is 5 edges; SummaryRounds bounds propagation at 4.
	if ef("d2").ChanOp != true {
		t.Fatal("d2 is 4 edges from the close; must see it")
	}
	if ef("d1").ChanOp {
		t.Fatalf("d1 is %d edges from the close; the %d-round bound must stop it", 5, SummaryRounds)
	}
}
