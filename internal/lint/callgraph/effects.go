package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RecvParam is the Params key standing for the method receiver.
const RecvParam = -1

// ParamEffect summarizes what one function may do to the memory reached
// through one parameter (or the receiver), on some path, without
// holding any lock at the writing statement.
type ParamEffect struct {
	// Writes: assignment through the parameter's pointee — *p = v,
	// p.f = v on a pointer param, or a pointer-receiver field write.
	Writes bool
	// WritesMap: element write p[k] = v where p is a map.
	WritesMap bool
	// SliceIndexParams: for slice element writes p[i] = v whose index
	// reads other parameters, the set of those parameter indices. The
	// caller decides whether the values it feeds those positions are
	// goroutine-local (disjoint slots) or shared.
	SliceIndexParams []int
}

func (pe *ParamEffect) addIndexParam(j int) {
	for _, k := range pe.SliceIndexParams {
		if k == j {
			return
		}
	}
	pe.SliceIndexParams = append(pe.SliceIndexParams, j)
}

// Effects is the bounded-depth summary of one function: unguarded
// writes reachable through parameters, plus the join signals goleak
// looks for inside goroutine bodies.
type Effects struct {
	Params map[int]*ParamEffect

	// WaitDone: reaches (*sync.WaitGroup).Done or .Wait.
	WaitDone bool
	// ChanOp: reaches a channel send/receive/close/select/range.
	ChanOp bool
	// CtxDone: reaches (context.Context).Done.
	CtxDone bool
}

// Joins reports whether any join/cancel signal is reachable.
func (e *Effects) Joins() bool { return e.WaitDone || e.ChanOp || e.CtxDone }

func (e *Effects) param(i int) *ParamEffect {
	if e.Params == nil {
		e.Params = map[int]*ParamEffect{}
	}
	pe := e.Params[i]
	if pe == nil {
		pe = &ParamEffect{}
		e.Params[i] = pe
	}
	return pe
}

// EffectsOf returns fn's summary, computing every node's summary (base
// extraction plus SummaryRounds propagation rounds) on first use.
func (g *Graph) EffectsOf(n *Node) *Effects {
	if !g.effectsDone {
		g.computeEffects()
		g.effectsDone = true
	}
	return n.effects
}

func (g *Graph) computeEffects() {
	params := map[*Node]map[types.Object]int{}
	for _, n := range g.Nodes {
		params[n] = paramIndex(n)
		n.effects = g.baseEffects(n, params[n])
	}
	// Propagate through call edges for a bounded number of rounds: a
	// write or join signal travels at most SummaryRounds call edges.
	// Each round reads a snapshot of the previous round's summaries
	// (Jacobi iteration), so the bound is exact and independent of map
	// iteration order.
	for round := 0; round < SummaryRounds; round++ {
		snap := map[*Node]*Effects{}
		for _, n := range g.Nodes {
			snap[n] = n.effects.clone()
		}
		changed := false
		for _, n := range g.Nodes {
			for _, site := range n.calls {
				if g.propagateSite(n, site, params[n], snap) {
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
}

func (e *Effects) clone() *Effects {
	c := &Effects{WaitDone: e.WaitDone, ChanOp: e.ChanOp, CtxDone: e.CtxDone}
	for i, pe := range e.Params {
		cp := &ParamEffect{Writes: pe.Writes, WritesMap: pe.WritesMap}
		cp.SliceIndexParams = append(cp.SliceIndexParams, pe.SliceIndexParams...)
		c.param(i)
		c.Params[i] = cp
	}
	return c
}

// paramIndex maps a node's receiver and parameter objects to indices
// (receiver is RecvParam).
func paramIndex(n *Node) map[types.Object]int {
	idx := map[types.Object]int{}
	sig, ok := n.Func.Type().(*types.Signature)
	if !ok {
		return idx
	}
	if r := sig.Recv(); r != nil {
		idx[r] = RecvParam
	}
	for i := 0; i < sig.Params().Len(); i++ {
		idx[sig.Params().At(i)] = i
	}
	return idx
}

// baseEffects extracts the intraprocedural summary of one node: its own
// unguarded writes through parameters and its own join signals.
// Deferred statements count (a deferred wg.Done still fires); spawned
// goroutines do not (their effects belong to the spawned body).
func (g *Graph) baseEffects(n *Node, params map[types.Object]int) *Effects {
	e := &Effects{}
	locks := g.Locksets(n)
	var walk func(ast.Node) bool
	walk = func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.GoStmt:
			return false
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				g.classifyWrite(e, lhs, params, locks)
			}
		case *ast.IncDecStmt:
			g.classifyWrite(e, node.X, params, locks)
		case *ast.SendStmt:
			e.ChanOp = true
		case *ast.UnaryExpr:
			if node.Op == token.ARROW {
				e.ChanOp = true
			}
		case *ast.SelectStmt:
			e.ChanOp = true
		case *ast.RangeStmt:
			if tv, ok := g.Info.Types[node.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					e.ChanOp = true
				}
			}
		case *ast.CallExpr:
			g.classifyJoinCall(e, node)
		}
		return true
	}
	ast.Inspect(n.Decl.Body, walk)
	return e
}

// classifyJoinCall recognizes the join-signal calls.
func (g *Graph) classifyJoinCall(e *Effects, call *ast.CallExpr) {
	switch fun := Unparen(call.Fun).(type) {
	case *ast.Ident:
		if g.Info.Uses[fun] == types.Universe.Lookup("close") {
			e.ChanOp = true
		}
	case *ast.SelectorExpr:
		fn, ok := g.Info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return
		}
		switch fn.FullName() {
		case "(*sync.WaitGroup).Done", "(*sync.WaitGroup).Wait":
			e.WaitDone = true
		case "(context.Context).Done":
			e.CtxDone = true
		}
	}
}

// classifyWrite records one unguarded lvalue that aliases caller memory
// through a parameter or pointer receiver.
func (g *Graph) classifyWrite(e *Effects, lhs ast.Expr, params map[types.Object]int, locks *LockInfo) {
	if locks.AnyHeld(lhs.Pos()) {
		return // mutex-guarded: not an effect callers must fear
	}
	switch lhs := Unparen(lhs).(type) {
	case *ast.StarExpr:
		if i, ok := paramRoot(g.Info, params, lhs.X); ok {
			e.param(i).Writes = true
		}
	case *ast.SelectorExpr:
		root := RootIdent(lhs)
		if root == nil {
			return
		}
		obj := g.Info.ObjectOf(root)
		i, ok := params[obj]
		if !ok {
			return
		}
		// A field write only escapes when the parameter is a pointer (or
		// the receiver is a pointer receiver); value copies stay local.
		if _, isPtr := obj.Type().Underlying().(*types.Pointer); isPtr {
			e.param(i).Writes = true
		}
	case *ast.IndexExpr:
		root := RootIdent(lhs.X)
		if root == nil {
			return
		}
		i, ok := params[g.Info.ObjectOf(root)]
		if !ok {
			return
		}
		tv, ok := g.Info.Types[lhs.X]
		if !ok {
			return
		}
		switch tv.Type.Underlying().(type) {
		case *types.Map:
			e.param(i).WritesMap = true
		case *types.Slice:
			// Record which parameters feed the index; indices built from
			// locals or constants mirror the v1 under-approximation and
			// are not reported.
			for _, j := range indexParams(g.Info, params, lhs.Index) {
				e.param(i).addIndexParam(j)
			}
		}
	}
}

// paramRoot resolves an expression to a parameter index when its root
// identifier is a parameter.
func paramRoot(info *types.Info, params map[types.Object]int, e ast.Expr) (int, bool) {
	root := RootIdent(e)
	if root == nil {
		return 0, false
	}
	i, ok := params[info.ObjectOf(root)]
	return i, ok
}

// indexParams returns the parameter indices read by an index expression.
func indexParams(info *types.Info, params map[types.Object]int, idx ast.Expr) []int {
	var out []int
	ast.Inspect(idx, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if i, ok := params[info.ObjectOf(id)]; ok {
				out = append(out, i)
			}
		}
		return true
	})
	return out
}

// propagateSite folds one callee's summary into the caller: join
// signals always travel; write effects travel when the caller hands one
// of its own parameters to a written position and holds no lock at the
// call site.
func (g *Graph) propagateSite(caller *Node, site *CallSite, params map[types.Object]int, snap map[*Node]*Effects) bool {
	changed := false
	for _, callee := range site.Callees {
		ce := snap[callee]
		if ce == nil {
			continue
		}
		e := caller.effects
		if ce.Joins() {
			if ce.WaitDone && !e.WaitDone {
				e.WaitDone, changed = true, true
			}
			if ce.ChanOp && !e.ChanOp {
				e.ChanOp, changed = true, true
			}
			if ce.CtxDone && !e.CtxDone {
				e.CtxDone, changed = true, true
			}
		}
		if len(ce.Params) == 0 {
			continue
		}
		if g.Locksets(caller).AnyHeld(site.Call.Pos()) {
			continue // guarded call: the callee's writes happen under the lock
		}
		for calleeIdx, pe := range ce.Params {
			arg, ok := ArgExpr(site.Call, calleeIdx)
			if !ok {
				continue
			}
			callerIdx, ok := paramRoot(g.Info, params, arg)
			if !ok {
				continue
			}
			cpe := e.param(callerIdx)
			if pe.Writes && !cpe.Writes {
				cpe.Writes, changed = true, true
			}
			if pe.WritesMap && !cpe.WritesMap {
				cpe.WritesMap, changed = true, true
			}
			for _, j := range pe.SliceIndexParams {
				// The callee indexes the slice with its parameter j; map
				// that back to whatever the caller feeds position j.
				jarg, ok := ArgExpr(site.Call, j)
				if !ok {
					continue
				}
				if ji, ok := paramRoot(g.Info, params, jarg); ok {
					before := len(cpe.SliceIndexParams)
					cpe.addIndexParam(ji)
					if len(cpe.SliceIndexParams) != before {
						changed = true
					}
				}
			}
		}
	}
	return changed
}

// ArgExpr returns the caller expression feeding the callee's parameter
// idx at this call: the receiver expression for RecvParam, otherwise
// the positional argument. Variadic tails beyond the declared
// parameters are not mapped.
func ArgExpr(call *ast.CallExpr, idx int) (ast.Expr, bool) {
	if idx == RecvParam {
		if sel, ok := Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return sel.X, true
		}
		return nil, false
	}
	if idx < 0 || idx >= len(call.Args) {
		return nil, false
	}
	return call.Args[idx], true
}
