// Package overflow is the overflowcalc fixture: layout-style arithmetic
// in every guarded and unguarded shape the analyzer distinguishes.
package overflow

import "internal/bitutil"

// Bad: nothing pins n below 63 before the shift.
func shiftUnguarded(n int) int {
	return 1 << uint(n) // want `left shift may exceed int for representable inputs`
}

// Good: the guard's false branch bounds n to [0, 20].
func shiftGuarded(n int) int {
	if n < 0 || n > 20 {
		return 0
	}
	return 1 << uint(n)
}

// Good: the left operand of && guards the shift that only evaluates
// when it holds (short-circuit refinement).
func shiftShortCircuit(v int) int {
	n := 0
	for n < 63 && (1<<uint(n)) < v {
		n++
	}
	return n
}

// Bad: the loop condition shifts by an unbounded counter; for v near
// MaxInt the shift wraps before the comparison terminates the loop.
func shiftLoopUnguarded(v int) int {
	n := 0
	for (1 << uint(n)) < v { // want `left shift may exceed int for representable inputs`
		n++
	}
	return n
}

// Bad: uint conversion of a possibly-negative amount wraps to a huge
// shift; the upper guard alone does not help.
func shiftWrap(n int) int {
	if n > 5 {
		return 0
	}
	return 2 << uint(n-2) // want `left shift may exceed int for representable inputs`
}

// Bad: the paper's track formula N²/4 with an unconstrained N.
func squareUnguarded(n int) int {
	return n * n / 4 // want `product of parameter-derived operands may exceed int`
}

// Good: the entry guard bounds the square below int overflow.
func squareGuarded(n int) int {
	if n < 2 || n > 1<<20 {
		return 0
	}
	return n * n / 4
}

// Good: a division keeps the product of bounded halves bounded.
func ratioGuarded(n int) int {
	if n < 0 || n > 1000 {
		return 0
	}
	return (n / 2) * (n / 2)
}

type box struct {
	m2, m3, blocks int
}

// Bad: a constructor computing fields from its parameter — the shift
// results are stored and their product is parameter-derived taint.
func (b *box) build(n int) {
	b.m2 = 1 << uint(n)    // want `left shift may exceed int for representable inputs`
	b.m3 = 1 << uint(n/2)  // want `left shift may exceed int for representable inputs`
	b.blocks = b.m2 * b.m3 // want `product of parameter-derived operands may exceed int`
}

// Good: an accessor multiplying fields its caller validated — field
// reads not assigned in this function carry no taint.
func (b *box) area() int {
	return b.m2 * b.m3
}

// Good: GroupSpec accessors are bounded by the constructor contract.
func specShift(spec bitutil.GroupSpec) int {
	return 1 << uint(spec.GroupWidth(2))
}

// Good: len is bounded far below overflow and the modulo pins the
// shift amount under 63.
func lenShift(xs []int) int {
	return len(xs)*4 + 1<<uint(len(xs)%40)
}

// Bad: a locally derived bound that still overflows — taint flows
// through the local assignment chain.
func derivedSquare(n int) int {
	rows := 1 << uint(n) // want `left shift may exceed int for representable inputs`
	return rows * rows   // want `product of parameter-derived operands may exceed int`
}

// Good: constant shifts are folded and checked by the compiler.
func constShift() int {
	return 1 << 20
}
