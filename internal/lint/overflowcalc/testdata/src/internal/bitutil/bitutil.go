// Package bitutil is a fixture stand-in for the real
// bfvlsi/internal/bitutil: the overflowcalc bounded-call table keys on
// the package-path suffix "internal/bitutil" and the GroupSpec type
// name, so these accessors are trusted to stay within [0, 62] exactly
// like the real ones (whose constructor enforces it).
package bitutil

// GroupSpec mirrors the real validated bit-group descriptor.
type GroupSpec struct {
	widths []int
}

// NewGroupSpec mirrors the validation contract: widths positive, total
// at most 62 bits.
func NewGroupSpec(widths []int) GroupSpec {
	total := 0
	for _, w := range widths {
		if w <= 0 {
			panic("bad width")
		}
		total += w
	}
	if total > 62 {
		panic("too many bits")
	}
	return GroupSpec{widths: widths}
}

// GroupWidth returns the width of group i.
func (s GroupSpec) GroupWidth(i int) int { return s.widths[i-1] }

// TotalBits returns the summed width.
func (s GroupSpec) TotalBits() int {
	t := 0
	for _, w := range s.widths {
		t += w
	}
	return t
}

// Levels returns the number of groups.
func (s GroupSpec) Levels() int { return len(s.widths) }

// Size returns 2^TotalBits.
func (s GroupSpec) Size() int { return 1 << uint(s.TotalBits()) }
