package overflowcalc_test

import (
	"testing"

	"bfvlsi/internal/lint/analysistest"
	"bfvlsi/internal/lint/overflowcalc"
)

func TestOverflowcalc(t *testing.T) {
	analysistest.Run(t, "testdata", overflowcalc.Analyzer, "overflow")
}
