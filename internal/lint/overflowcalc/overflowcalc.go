// Package overflowcalc implements the bflint analyzer that checks the
// layout arithmetic of the paper's closed forms. The track count
// ⌊N²/4⌋, the area N²/log₂²N, and the packaging row counts 2ⁿ are all
// computed in int; for representable inputs (n up to the parameter
// range the constructors accept) the intermediate products and shifts
// silently wrap. The analyzer runs the interval abstract interpretation
// from internal/lint/dataflow over each function and flags
//
//   - left shifts (1<<uint(n), m<<k) whose result interval is unbounded
//     — no dominating guard pins the shift amount below 63;
//   - products (n*n, rows*cols, area terms) whose result interval is
//     unbounded AND whose operands derive from function parameters,
//     shifts, or other flagged products (the taint rule): field reads of
//     caller-validated structs are trusted, so accessors like
//     PredictedDims stay clean while constructors that compute the
//     fields are checked.
//
// The fix for a true positive is a guard that the interval analysis can
// see (`if n < 1 || n > 14 { return err }`) or the checked helpers
// bitutil.CheckedShl / bitutil.CheckedMul with an error return.
package overflowcalc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"bfvlsi/internal/lint/analysis"
	"bfvlsi/internal/lint/cfg"
	"bfvlsi/internal/lint/dataflow"
)

// Analyzer flags potentially overflowing shifts and products in layout
// arithmetic.
var Analyzer = &analysis.Analyzer{
	Name: "overflowcalc",
	Doc: "flag left shifts and parameter-derived products in layout arithmetic whose interval " +
		"analysis cannot bound the result below int overflow; guard the input range or use " +
		"bitutil.CheckedShl/CheckedMul",
	Run: run,
}

// boundedSpecMethods are accessor results the analyzer trusts: the
// bitutil.GroupSpec constructor enforces total bits <= 62 and per-group
// widths >= 1, so every accessor is bounded regardless of call context.
var boundedSpecMethods = map[string]dataflow.Interval{
	"GroupWidth": dataflow.Range(0, 62),
	"TotalBits":  dataflow.Range(0, 62),
	"Levels":     dataflow.Range(0, 62),
	"Size":       dataflow.Range(0, 1<<62),
}

func run(pass *analysis.Pass) (any, error) {
	hook := boundedCallHook(pass.TypesInfo)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if pass.InTestFile(fd.Pos()) {
				continue
			}
			checkFunc(pass, fd, hook)
		}
	}
	return nil, nil
}

// boundedCallHook supplies intervals for calls with contract-bounded
// results (len/cap are handled inside the engine).
func boundedCallHook(info *types.Info) func(*ast.CallExpr) (dataflow.Interval, bool) {
	return func(call *ast.CallExpr) (dataflow.Interval, bool) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return dataflow.Interval{}, false
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return dataflow.Interval{}, false
		}
		if !strings.HasSuffix(fn.Pkg().Path(), "internal/bitutil") {
			return dataflow.Interval{}, false
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return dataflow.Interval{}, false
		}
		rt := sig.Recv().Type()
		if p, isPtr := rt.(*types.Pointer); isPtr {
			rt = p.Elem()
		}
		named, ok := rt.(*types.Named)
		if !ok || named.Obj().Name() != "GroupSpec" {
			return dataflow.Interval{}, false
		}
		iv, ok := boundedSpecMethods[fn.Name()]
		return iv, ok
	}
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, hook func(*ast.CallExpr) (dataflow.Interval, bool)) {
	g := cfg.Build(fd.Body)
	res := dataflow.Intervals(g, dataflow.IntervalConfig{
		Info: pass.TypesInfo,
		Call: hook,
	})
	taint := taintedSet(pass.TypesInfo, fd)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate frame: its params are not this function's
		}
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.SHL && be.Op != token.MUL) {
			return true
		}
		// Constant expressions are folded and checked by the compiler.
		if tv, ok := pass.TypesInfo.Types[be]; ok && tv.Value != nil {
			return true
		}
		if !isIntegerExpr(pass.TypesInfo, be) {
			return true
		}
		stmt := enclosingStmt(fd.Body, be)
		if stmt == nil {
			return true
		}
		env := res.EnvAt(stmt)
		// Loop and if conditions are evaluated on CFG edges, not inside
		// blocks; fetch the edge environment for shifts in conditions.
		switch s := stmt.(type) {
		case *ast.IfStmt:
			if nodeContains(s.Cond, be) {
				if e, ok := res.CondEnv(s.Cond); ok {
					env = e
				}
			}
		case *ast.ForStmt:
			if s.Cond != nil && nodeContains(s.Cond, be) {
				if e, ok := res.CondEnv(s.Cond); ok {
					env = e
				}
			}
		}
		// Apply short-circuit refinement: in `n < 63 && v < 1<<uint(n)`
		// the shift only evaluates under the guard to its left.
		if outer := outerExpr(stmt, be); outer != nil {
			env = res.RefineWithin(env, outer, be)
		}
		iv := res.Eval(env, be)
		if iv.Bounded() {
			return true
		}
		switch be.Op {
		case token.SHL:
			pass.Reportf(be.Pos(),
				"left shift may exceed int for representable inputs (result interval %s); guard the shift amount below 63 or use bitutil.CheckedShl",
				iv)
		case token.MUL:
			if taint.expr(be.X) || taint.expr(be.Y) {
				pass.Reportf(be.Pos(),
					"product of parameter-derived operands may exceed int for representable inputs (result interval %s); guard the input range or use bitutil.CheckedMul",
					iv)
			}
		}
		return true
	})
}

func isIntegerExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// taintSet tracks which values derive from the function's own integer
// parameters. Variables are tracked by object; fields assigned within
// the function are tracked by their rendered selector path (so a
// constructor that stores a shift result in b.m2 and later multiplies
// b.m2*b.m3 is still caught, while a method that merely READS fields its
// caller validated is not).
type taintSet struct {
	info  *types.Info
	vars  map[types.Object]bool
	paths map[string]bool
}

func taintedSet(info *types.Info, fd *ast.FuncDecl) *taintSet {
	t := &taintSet{info: info, vars: map[types.Object]bool{}, paths: map[string]bool{}}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if v, ok := info.Defs[name].(*types.Var); ok && isIntType(v.Type()) {
					t.vars[v] = true
				}
			}
		}
	}
	// Propagate through assignments; two passes reach a fixpoint for the
	// straight-line constructor code this targets (no taint is ever
	// removed, so iteration is monotone).
	for pass := 0; pass < 2; pass++ {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					if t.expr(n.Rhs[i]) {
						t.mark(lhs)
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) != len(n.Values) {
					return true
				}
				for i, name := range n.Names {
					if t.expr(n.Values[i]) {
						t.mark(name)
					}
				}
			}
			return true
		})
	}
	return t
}

func isIntType(tt types.Type) bool {
	b, ok := tt.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func (t *taintSet) mark(lhs ast.Expr) {
	switch lhs := unparen(lhs).(type) {
	case *ast.Ident:
		if v, ok := t.info.ObjectOf(lhs).(*types.Var); ok {
			t.vars[v] = true
		}
	case *ast.SelectorExpr:
		if p, ok := selectorPath(lhs); ok {
			t.paths[p] = true
		}
	}
}

// expr reports whether e derives from a parameter, a shift, or another
// tainted value.
func (t *taintSet) expr(e ast.Expr) bool {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return t.vars[t.info.ObjectOf(e)]
	case *ast.SelectorExpr:
		p, ok := selectorPath(e)
		return ok && t.paths[p]
	case *ast.UnaryExpr:
		return t.expr(e.X)
	case *ast.BinaryExpr:
		if e.Op == token.SHL {
			return true // shift-derived values carry taint by definition
		}
		switch e.Op {
		case token.ADD, token.SUB, token.MUL:
			return t.expr(e.X) || t.expr(e.Y)
		case token.QUO, token.SHR:
			return t.expr(e.X)
		}
	case *ast.CallExpr:
		// Type conversions pass taint through; real calls launder it.
		if tv, ok := t.info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return t.expr(e.Args[0])
		}
	}
	return false
}

// selectorPath renders x.f / x.f.g for ident-rooted selectors.
func selectorPath(sel *ast.SelectorExpr) (string, bool) {
	switch x := unparen(sel.X).(type) {
	case *ast.Ident:
		return x.Name + "." + sel.Sel.Name, true
	case *ast.SelectorExpr:
		if p, ok := selectorPath(x); ok {
			return p + "." + sel.Sel.Name, true
		}
	}
	return "", false
}

// nodeContains reports whether node's source range covers target.
func nodeContains(node ast.Node, target ast.Node) bool {
	return node != nil && node.Pos() <= target.Pos() && target.End() <= node.End()
}

// outerExpr returns the outermost expression within stmt that contains
// target (the root for short-circuit refinement).
func outerExpr(stmt ast.Stmt, target ast.Expr) ast.Expr {
	var outer ast.Expr
	ast.Inspect(stmt, func(n ast.Node) bool {
		if outer != nil || n == nil {
			return false
		}
		if !nodeContains(n, target) {
			return false
		}
		if e, ok := n.(ast.Expr); ok {
			outer = e
			return false
		}
		return true
	})
	return outer
}

// enclosingStmt returns the innermost non-block statement under root
// containing target (needed to look up the dataflow environment).
func enclosingStmt(root ast.Node, target ast.Node) ast.Stmt {
	var found ast.Stmt
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() > target.Pos() || n.End() < target.End() {
			return false
		}
		if s, ok := n.(ast.Stmt); ok {
			if _, isBlock := s.(*ast.BlockStmt); !isBlock {
				found = s
			}
		}
		return true
	})
	return found
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
