package ccc

import (
	"testing"
)

func TestNewAndVerify(t *testing.T) {
	for n := 3; n <= 7; n++ {
		c := New(n)
		if c.Nodes != n*(1<<uint(n)) {
			t.Fatalf("CCC(%d) nodes = %d", n, c.Nodes)
		}
		if err := c.Verify(); err != nil {
			t.Errorf("CCC(%d): %v", n, err)
		}
		if !c.G.Connected() {
			t.Errorf("CCC(%d) disconnected", n)
		}
	}
}

func TestIDRoundTrip(t *testing.T) {
	c := New(4)
	for cy := 0; cy < 16; cy++ {
		for p := 0; p < 4; p++ {
			gc, gp := c.CyclePos(c.ID(cy, p))
			if gc != cy || gp != p {
				t.Fatalf("round trip (%d,%d) -> (%d,%d)", cy, p, gc, gp)
			}
		}
	}
}

func TestCyclePartition(t *testing.T) {
	// Each cycle has exactly n off-module (cube) links: one per node.
	c := New(5)
	q := c.CyclePartition()
	if q.NumNodes() != 32 {
		t.Fatalf("cycles = %d", q.NumNodes())
	}
	for cy := 0; cy < q.NumNodes(); cy++ {
		if d := q.Degree(cy); d != 5 {
			t.Errorf("cycle %d has %d off-module links, want 5", cy, d)
		}
	}
	// The quotient is exactly Q_n (simple).
	for _, e := range q.Simple().Edges() {
		diff := e.U ^ e.V
		if diff&(diff-1) != 0 {
			t.Errorf("quotient edge %d-%d not a hypercube link", e.U, e.V)
		}
	}
}

func TestLayoutValidates(t *testing.T) {
	for n := 3; n <= 6; n++ {
		c := New(n)
		res, err := c.Layout()
		if err != nil {
			t.Fatalf("CCC(%d): %v", n, err)
		}
		if err := res.Validate(); err != nil {
			t.Errorf("CCC(%d): %v", n, err)
		}
		// Wires: ring chains (n-1 per cycle) + ring closers (1 per
		// cycle) + cube links (n*2^n/2).
		cycles := 1 << uint(n)
		want := cycles*n + n*cycles/2
		if got := len(res.L.Wires); got != want {
			t.Errorf("CCC(%d): %d wires, want %d", n, got, want)
		}
		if got := len(res.L.Nodes); got != c.Nodes {
			t.Errorf("CCC(%d): %d node boxes", n, got)
		}
	}
}

func TestLayoutAreaOrder(t *testing.T) {
	// CCC(n) has bisection Theta(2^n); area should be Theta(4^n) with a
	// modest constant under this scheme.
	for _, n := range []int{4, 6, 8} {
		res, err := New(n).Layout()
		if err != nil {
			t.Fatal(err)
		}
		st := res.Stats()
		lead := int64(1) << uint(2*n)
		if st.Area < lead/4 {
			t.Errorf("CCC(%d) area %d below bisection order %d", n, st.Area, lead/4)
		}
		if st.Area > 64*lead {
			t.Errorf("CCC(%d) area %d far above Theta(4^n)", n, st.Area)
		}
	}
}

func TestDimensionBanksDisjoint(t *testing.T) {
	banks, total, err := dimensionBanks(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(banks) != 3 {
		t.Fatalf("banks = %d", len(banks))
	}
	// Offsets partition [0, total).
	covered := 0
	for _, b := range banks {
		if b.offset != covered {
			t.Errorf("bank offset %d, want %d", b.offset, covered)
		}
		covered += b.ta.NumTracks
		if err := b.ta.ValidateLoose(); err != nil {
			t.Error(err)
		}
	}
	if covered != total {
		t.Errorf("total %d != covered %d", total, covered)
	}
	// Dim-d matching needs max(1, 2^d)... measured: cuts 1, 2, 4.
	wants := []int{1, 2, 4}
	for d, b := range banks {
		if b.ta.NumTracks != wants[d] {
			t.Errorf("dim %d tracks = %d, want %d", d, b.ta.NumTracks, wants[d])
		}
	}
}

func TestNewPanicsOutOfRange(t *testing.T) {
	for _, n := range []int{2, 19} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CCC(%d) did not panic", n)
				}
			}()
			New(n)
		}()
	}
}

func BenchmarkLayoutCCC6(b *testing.B) {
	c := New(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Layout(); err != nil {
			b.Fatal(err)
		}
	}
}
