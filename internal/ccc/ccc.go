// Package ccc builds cube-connected cycles networks CCC(n) and lays them
// out with the paper's grid-of-collinear-layouts technique. The paper
// cites Chen & Lau's "Tighter layouts of the cube-connected cycles" [7]
// among the related-network layout results its method addresses; here the
// same block-grid scheme used for butterflies produces a fully validated
// CCC layout: each cycle is a block of n nodes wired as a ring, the
// cycles form the quotient hypercube Q_n, and each hypercube dimension's
// links run in collinear track bands exactly like the butterfly's
// inter-block wiring.
package ccc

import (
	"fmt"

	"bfvlsi/internal/collinear"
	"bfvlsi/internal/geom"
	"bfvlsi/internal/graph"
	"bfvlsi/internal/grid"
)

// CCC is a cube-connected cycles network: 2^n cycles of n nodes. Node
// (c, p) - cycle c, position p - has ring links to (c, p±1 mod n) and one
// cube link to (c ^ 2^p, p).
type CCC struct {
	N     int // cube dimension; cycles have n nodes
	Nodes int // n * 2^n
	G     *graph.Graph
}

// New constructs CCC(n) for n >= 3 (smaller n degenerate: the ring links
// would duplicate).
func New(n int) *CCC {
	if n < 3 || n > 18 {
		panic(fmt.Sprintf("ccc: dimension %d out of range [3,18]", n))
	}
	cycles := 1 << uint(n)
	c := &CCC{N: n, Nodes: n * cycles}
	c.G = graph.New(c.Nodes)
	for cy := 0; cy < cycles; cy++ {
		for p := 0; p < n; p++ {
			u := c.ID(cy, p)
			// ring link to the next position
			c.G.AddEdge(u, c.ID(cy, (p+1)%n), graph.KindStraight)
			// cube link (add once)
			other := cy ^ (1 << uint(p))
			if other > cy {
				c.G.AddEdge(u, c.ID(other, p), graph.KindCube)
			}
		}
	}
	return c
}

// ID maps (cycle, position) to a node id.
func (c *CCC) ID(cycle, pos int) int { return cycle*c.N + pos }

// CyclePos is the inverse of ID.
func (c *CCC) CyclePos(id int) (cycle, pos int) { return id / c.N, id % c.N }

// Verify checks the defining structure: every node has degree exactly 3
// (two ring + one cube), ring links close cycles of length n, and cube
// links pair position-p nodes of Hamming-adjacent cycles.
func (c *CCC) Verify() error {
	if err := c.G.HandshakeOK(); err != nil {
		return err
	}
	wantEdges := c.Nodes + c.Nodes/2 // n*2^n ring + n*2^n/2 cube
	if c.G.NumEdges() != wantEdges {
		return fmt.Errorf("ccc: %d edges, want %d", c.G.NumEdges(), wantEdges)
	}
	for id := 0; id < c.Nodes; id++ {
		if d := c.G.Degree(id); d != 3 {
			return fmt.Errorf("ccc: node %d degree %d, want 3", id, d)
		}
		cy, p := c.CyclePos(id)
		ring, cube := 0, 0
		for _, he := range c.G.Neighbors(id) {
			oc, op := c.CyclePos(he.To)
			switch he.Kind {
			case graph.KindStraight:
				if oc != cy || (op != (p+1)%c.N && op != (p+c.N-1)%c.N) {
					return fmt.Errorf("ccc: bad ring link (%d,%d)-(%d,%d)", cy, p, oc, op)
				}
				ring++
			case graph.KindCube:
				if op != p || oc != cy^(1<<uint(p)) {
					return fmt.Errorf("ccc: bad cube link (%d,%d)-(%d,%d)", cy, p, oc, op)
				}
				cube++
			default:
				return fmt.Errorf("ccc: unexpected kind %v", he.Kind)
			}
		}
		if ring != 2 || cube != 1 {
			return fmt.Errorf("ccc: node (%d,%d) has %d ring / %d cube links", cy, p, ring, cube)
		}
	}
	return nil
}

// CyclePartition assigns each cycle to its own module: the natural CCC
// packaging. Every module has n nodes and exactly n off-module (cube)
// links: 1 per node, already constant - the reason the paper's
// O(1/log N) butterfly result is the harder one.
func (c *CCC) CyclePartition() *graph.Graph {
	super := make([]int, c.Nodes)
	for id := range super {
		super[id], _ = c.CyclePos(id)
	}
	return c.G.Contract(super)
}

// LayoutResult is a built CCC layout.
type LayoutResult struct {
	N         int
	GridRows  int
	GridCols  int
	BlockW    int
	BlockH    int
	RowTracks int
	ColTracks int
	L         *grid.Layout
}

const nodeSide = 3 // CCC nodes have degree 3

// Layout places the 2^n cycles as a 2^ky x 2^kx grid of blocks
// (kx = ceil(n/2)); each block holds its cycle's n nodes in a row with
// the ring wired locally (chain plus one return track), and the cube
// links of the kx low dimensions run in collinear track bands above each
// block row while the remaining dimensions use vertical regions right of
// each block column - the same scheme as the butterfly and hypercube
// layouts. Area is Theta(4^n), bisection-optimal order for CCC.
func (c *CCC) Layout() (*LayoutResult, error) {
	n := c.N
	kx := (n + 1) / 2
	ky := n - kx
	cols := 1 << uint(kx)
	rows := 1 << uint(ky)

	// Inter-block links per grid row: one track bank per low dimension
	// d < kx. Each dimension's links form a perfect matching over the
	// block columns (never chained in a track), so every wire has a
	// private terminal; banks stack to form the band.
	rowBanks, rowTracks, err := dimensionBanks(cols, kx)
	if err != nil {
		return nil, err
	}
	colBanks, colTracks, err := dimensionBanks(rows, ky)
	if err != nil {
		return nil, err
	}

	res := &LayoutResult{
		N: n, GridRows: rows, GridCols: cols,
		RowTracks: rowTracks, ColTracks: colTracks,
	}
	// Block geometry: n node boxes side by side, one ring-return track
	// above them, and per-node top terminals for the cube links going up
	// (low dims) plus right-edge terminals (high dims).
	pitch := nodeSide + 1
	res.BlockW = n * pitch
	res.BlockH = nodeSide + 1 + ky // node row + ring return + right-exit runs
	blockX := func(gc int) int { return gc * (res.BlockW + res.ColTracks) }
	blockY := func(gr int) int { return gr * (res.BlockH + res.RowTracks) }

	l := grid.NewLayout(grid.Thompson, 2)
	res.L = l
	nodeRect := func(cy, p int) geom.Rect {
		gc := cy & (cols - 1)
		gr := cy >> uint(kx)
		x0 := blockX(gc) + p*pitch
		y0 := blockY(gr)
		return geom.NewRect(x0, y0, x0+nodeSide-1, y0+nodeSide-1)
	}
	cycles := 1 << uint(n)
	for cy := 0; cy < cycles; cy++ {
		for p := 0; p < n; p++ {
			l.AddNode(fmt.Sprintf("c%d.%d", cy, p), nodeRect(cy, p))
		}
	}
	// Ring wiring inside each block: chain links between neighbors at
	// slot y+1 and the closing link over the return track at y+nodeSide.
	for cy := 0; cy < cycles; cy++ {
		for p := 0; p+1 < n; p++ {
			a, b := nodeRect(cy, p), nodeRect(cy, p+1)
			if err := l.AddWireHV(fmt.Sprintf("r%d.%d", cy, p),
				geom.Point{X: a.X1, Y: a.Y0 + 1},
				geom.Point{X: b.X0, Y: b.Y0 + 1}); err != nil {
				return nil, err
			}
		}
		// closing link: up from node n-1, across the return track, down
		// into node 0.
		first, last := nodeRect(cy, 0), nodeRect(cy, n-1)
		ry := first.Y1 + 1
		if err := l.AddWireHV(fmt.Sprintf("r%d.w", cy),
			geom.Point{X: last.X0 + 1, Y: last.Y1},
			geom.Point{X: last.X0 + 1, Y: ry},
			geom.Point{X: first.X0 + 1, Y: ry},
			geom.Point{X: first.X0 + 1, Y: first.Y1},
		); err != nil {
			return nil, err
		}
	}
	// Cube links, low dimensions d < kx: horizontal bands above each
	// block row; position-d nodes exit through their own top column.
	for cy := 0; cy < cycles; cy++ {
		for d := 0; d < kx; d++ {
			other := cy ^ (1 << uint(d))
			if other < cy {
				continue
			}
			gr := cy >> uint(kx)
			a, b := cy&(cols-1), other&(cols-1)
			track := rowBanks[d].offset + trackOf(rowBanks[d].ta, a, b)
			ty := blockY(gr) + res.BlockH + track
			na, nb := nodeRect(cy, d), nodeRect(other, d)
			if err := l.AddWireHV(fmt.Sprintf("q%d.%d", cy, d),
				geom.Point{X: na.X0 + 2, Y: na.Y1},
				geom.Point{X: na.X0 + 2, Y: ty},
				geom.Point{X: nb.X0 + 2, Y: ty},
				geom.Point{X: nb.X0 + 2, Y: nb.Y1},
			); err != nil {
				return nil, err
			}
		}
		// High dimensions d >= kx: vertical regions right of the column;
		// the node's run goes right along its block's exit row.
		for d := kx; d < n; d++ {
			other := cy ^ (1 << uint(d))
			if other < cy {
				continue
			}
			gc := cy & (cols - 1)
			ga, gb := cy>>uint(kx), other>>uint(kx)
			bank := colBanks[d-kx]
			track := bank.offset + trackOf(bank.ta, ga, gb)
			tx := blockX(gc) + res.BlockW + track
			na, nb := nodeRect(cy, d), nodeRect(other, d)
			// exit run rows: one per high dimension, above the ring track
			ya := blockY(ga) + nodeSide + 1 + (d - kx)
			yb := blockY(gb) + nodeSide + 1 + (d - kx)
			if err := l.AddWireHV(fmt.Sprintf("q%d.%d", cy, d),
				geom.Point{X: na.X1, Y: na.Y0 + 2},
				geom.Point{X: na.X1 + 1, Y: na.Y0 + 2},
				geom.Point{X: na.X1 + 1, Y: ya},
				geom.Point{X: tx, Y: ya},
				geom.Point{X: tx, Y: yb},
				geom.Point{X: nb.X1 + 1, Y: yb},
				geom.Point{X: nb.X1 + 1, Y: nb.Y0 + 2},
				geom.Point{X: nb.X1, Y: nb.Y0 + 2},
			); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}

// bank is one dimension's private collinear track range.
type bank struct {
	ta     *collinear.TrackAssignment
	offset int
}

// dimensionBanks builds, for each of k dimensions over m line positions,
// the track assignment of that dimension's matching, stacked into
// consecutive offsets.
func dimensionBanks(m, k int) ([]bank, int, error) {
	banks := make([]bank, k)
	offset := 0
	for d := 0; d < k; d++ {
		var links []collinear.Link
		for a := 0; a < m; a++ {
			b := a ^ (1 << uint(d))
			if b > a {
				links = append(links, collinear.Link{A: a, B: b})
			}
		}
		ta, err := collinear.FromLinks(m, links)
		if err != nil {
			return nil, 0, err
		}
		banks[d] = bank{ta: ta, offset: offset}
		offset += ta.NumTracks
	}
	return banks, offset, nil
}

func trackOf(ta *collinear.TrackAssignment, a, b int) int {
	if a > b {
		a, b = b, a
	}
	for _, lk := range ta.Links {
		if lk.A == a && lk.B == b {
			return lk.Track
		}
	}
	return 0
}

// Stats measures the layout.
func (r *LayoutResult) Stats() grid.Stats { return r.L.Stats() }

// Validate runs the full Thompson-rule check.
func (r *LayoutResult) Validate() error {
	return r.L.Validate(grid.ValidateOptions{
		CheckNodeInteriors:      true,
		RequireTerminalsOnNodes: true,
	})
}
