// Package swapnet builds the swap networks SN(l, Q_k1) of Yeh and Parhami
// (paper, Appendix A.1). A swap network on the group spec (k_1, ..., k_l)
// has 2^{n_l} nodes, n_l = k_1 + ... + k_l. Two nodes are adjacent iff
//
//	(a) their addresses differ in exactly one bit of the first group
//	    (a dimension-i nucleus link), or
//	(b) one address is obtained from the other by exchanging the i-th
//	    group with the rightmost k_i bits, for some level i in [2, l]
//	    (a level-i inter-cluster link).
//
// Hierarchical swap networks (HSNs) are the special case k_i = k_1 for all
// i; "incomplete" HSNs have k_l < k_1. Unfolding a swap network along its
// FFT algorithm yields the indirect swap networks of package isn.
package swapnet

import (
	"fmt"

	"bfvlsi/internal/bitutil"
	"bfvlsi/internal/graph"
)

// SwapNet is a swap network SN(l, Q_k1) over a group spec.
type SwapNet struct {
	Spec bitutil.GroupSpec
	G    *graph.Graph
}

// New constructs the swap network for the given spec. Node IDs are the
// addresses themselves. Addresses that are fixed points of a level-i swap
// (group i equals the rightmost k_i bits) have no level-i link, matching
// the usual swapped-network convention.
func New(spec bitutil.GroupSpec) *SwapNet {
	size := spec.Size()
	if size > 1<<22 {
		panic(fmt.Sprintf("swapnet: %v too large to materialize", spec))
	}
	g := graph.New(int(size))
	k1 := spec.GroupWidth(1)
	for x := uint64(0); x < size; x++ {
		for d := 0; d < k1; d++ {
			y := x ^ (1 << uint(d))
			if y > x {
				g.AddEdge(int(x), int(y), graph.KindCube)
			}
		}
		for lvl := 2; lvl <= spec.Levels(); lvl++ {
			y := spec.SwapNeighbor(x, lvl)
			if y > x {
				g.AddEdge(int(x), int(y), graph.KindSwap)
			}
		}
	}
	return &SwapNet{Spec: spec, G: g}
}

// NewHSN constructs the hierarchical swap network HSN(l, Q_k): the swap
// network with l equal groups of width k.
func NewHSN(l, k int) *SwapNet {
	widths := make([]int, l)
	for i := range widths {
		widths[i] = k
	}
	return New(bitutil.MustGroupSpec(widths...))
}

// Levels returns l.
func (s *SwapNet) Levels() int { return s.Spec.Levels() }

// NumNodes returns 2^{n_l}.
func (s *SwapNet) NumNodes() int { return s.G.NumNodes() }

// IsHSN reports whether all groups have equal width.
func (s *SwapNet) IsHSN() bool {
	k := s.Spec.GroupWidth(1)
	for i := 2; i <= s.Spec.Levels(); i++ {
		if s.Spec.GroupWidth(i) != k {
			return false
		}
	}
	return true
}

// MaxDegree of a swap network: k_1 nucleus links plus at most one link per
// level 2..l.
func (s *SwapNet) MaxDegreeBound() int {
	return s.Spec.GroupWidth(1) + s.Spec.Levels() - 1
}

// Verify checks node/edge counts and the degree structure against the
// definition. Each node must have exactly k1 nucleus links, and exactly
// one level-i link for every level i where it is not a fixed point of the
// level-i swap.
func (s *SwapNet) Verify() error {
	if err := s.G.HandshakeOK(); err != nil {
		return err
	}
	spec := s.Spec
	k1 := spec.GroupWidth(1)
	for x := uint64(0); x < spec.Size(); x++ {
		cube, swap := 0, 0
		for _, he := range s.G.Neighbors(int(x)) {
			switch he.Kind {
			case graph.KindCube:
				diff := x ^ uint64(he.To)
				if diff == 0 || diff&(diff-1) != 0 || diff >= 1<<uint(k1) {
					return fmt.Errorf("swapnet: bad nucleus link %d-%d", x, he.To)
				}
				cube++
			case graph.KindSwap:
				ok := false
				for lvl := 2; lvl <= spec.Levels(); lvl++ {
					if spec.SwapNeighbor(x, lvl) == uint64(he.To) {
						ok = true
						break
					}
				}
				if !ok {
					return fmt.Errorf("swapnet: bad swap link %d-%d", x, he.To)
				}
				swap++
			default:
				return fmt.Errorf("swapnet: unexpected kind %v", he.Kind)
			}
		}
		if cube != k1 {
			return fmt.Errorf("swapnet: node %d has %d nucleus links, want %d", x, cube, k1)
		}
		wantSwap := 0
		for lvl := 2; lvl <= spec.Levels(); lvl++ {
			if spec.SwapNeighbor(x, lvl) != x {
				wantSwap++
			}
		}
		if swap != wantSwap {
			return fmt.Errorf("swapnet: node %d has %d swap links, want %d", x, swap, wantSwap)
		}
	}
	return nil
}

// ClusterOf returns the level-lvl cluster address of node x: the bits of
// groups lvl..l (cluster = the copy of SN(lvl-1, ...) containing x).
func (s *SwapNet) ClusterOf(x uint64, lvl int) uint64 {
	pos := s.Spec.GroupPos(lvl)
	return x >> uint(pos)
}
