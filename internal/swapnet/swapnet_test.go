package swapnet

import (
	"testing"

	"bfvlsi/internal/bitutil"
	"bfvlsi/internal/graph"
	"bfvlsi/internal/hypercube"
)

func TestSingleLevelIsHypercube(t *testing.T) {
	s := New(bitutil.MustGroupSpec(4))
	if err := hypercube.IsHypercube(s.G, 4); err != nil {
		t.Errorf("SN(1,Q_4) is not Q_4: %v", err)
	}
}

func TestVerifySweep(t *testing.T) {
	specs := []bitutil.GroupSpec{
		bitutil.MustGroupSpec(1, 1),
		bitutil.MustGroupSpec(2, 2),
		bitutil.MustGroupSpec(3, 3),
		bitutil.MustGroupSpec(3, 2),
		bitutil.MustGroupSpec(3, 3, 3),
		bitutil.MustGroupSpec(2, 2, 2, 2),
		bitutil.MustGroupSpec(4, 3, 2),
	}
	for _, spec := range specs {
		s := New(spec)
		if err := s.Verify(); err != nil {
			t.Errorf("%v: %v", spec, err)
		}
		if !s.G.Connected() {
			t.Errorf("%v: disconnected", spec)
		}
	}
}

func TestHSNProperties(t *testing.T) {
	s := NewHSN(3, 2)
	if !s.IsHSN() {
		t.Error("HSN(3,Q_2) not recognized as HSN")
	}
	if s.NumNodes() != 64 {
		t.Errorf("HSN(3,Q_2) nodes = %d", s.NumNodes())
	}
	if s.Levels() != 3 {
		t.Errorf("Levels = %d", s.Levels())
	}
	if New(bitutil.MustGroupSpec(3, 2)).IsHSN() {
		t.Error("(3,2) wrongly recognized as HSN")
	}
	if s.G.MaxDegree() > s.MaxDegreeBound() {
		t.Errorf("max degree %d exceeds bound %d", s.G.MaxDegree(), s.MaxDegreeBound())
	}
}

func TestFixedPointsHaveNoSwapLink(t *testing.T) {
	// Spec (1,1): nodes 00 and 11 are fixed under the level-2 swap, so they
	// have only the single nucleus link; 01 and 10 additionally link to
	// each other.
	s := New(bitutil.MustGroupSpec(1, 1))
	if s.G.Degree(0b00) != 1 || s.G.Degree(0b11) != 1 {
		t.Errorf("fixed points degrees: %d %d, want 1 1", s.G.Degree(0), s.G.Degree(3))
	}
	if s.G.Degree(0b01) != 2 || s.G.Degree(0b10) != 2 {
		t.Errorf("swap endpoints degrees: %d %d, want 2 2", s.G.Degree(1), s.G.Degree(2))
	}
	// And the swap edge is exactly 01-10.
	found := false
	for _, e := range s.G.Edges() {
		if e.Kind == graph.KindSwap {
			if e.U != 0b01 || e.V != 0b10 {
				t.Errorf("swap edge %v", e)
			}
			found = true
		}
	}
	if !found {
		t.Error("no swap edge in SN(2,Q_1)")
	}
}

func TestEdgeCountFormula(t *testing.T) {
	// Nucleus edges: 2^{n} * k1 / 2. Level-i edges: (2^{n} - fixed_i)/2
	// where fixed_i = #addresses whose group i equals their low k_i bits
	// = 2^{n - k_i}.
	specs := []bitutil.GroupSpec{
		bitutil.MustGroupSpec(2, 2),
		bitutil.MustGroupSpec(3, 3, 3),
		bitutil.MustGroupSpec(3, 2),
		bitutil.MustGroupSpec(4, 3, 2),
	}
	for _, spec := range specs {
		s := New(spec)
		n := spec.TotalBits()
		want := (1 << uint(n)) * spec.GroupWidth(1) / 2
		for lvl := 2; lvl <= spec.Levels(); lvl++ {
			ki := spec.GroupWidth(lvl)
			fixed := 1 << uint(n-ki)
			want += ((1 << uint(n)) - fixed) / 2
		}
		if got := s.G.NumEdges(); got != want {
			t.Errorf("%v: edges = %d, want %d", spec, got, want)
		}
	}
}

func TestClusterOf(t *testing.T) {
	s := New(bitutil.MustGroupSpec(2, 2, 2))
	// level-3 cluster of x is its top 2 bits; level-2 cluster the top 4.
	x := uint64(0b10_01_11)
	if s.ClusterOf(x, 3) != 0b10 {
		t.Errorf("level-3 cluster = %b", s.ClusterOf(x, 3))
	}
	if s.ClusterOf(x, 2) != 0b1001 {
		t.Errorf("level-2 cluster = %b", s.ClusterOf(x, 2))
	}
}

func TestSwapLinksConnectClusters(t *testing.T) {
	// Contract each level-l cluster of an HSN to a supernode: the result
	// must be a complete graph on 2^{k_l} supernodes (each pair of
	// clusters joined by at least one swap link), per Appendix A.1.
	s := NewHSN(2, 3)
	super := make([]int, s.NumNodes())
	for x := 0; x < s.NumNodes(); x++ {
		super[x] = int(s.ClusterOf(uint64(x), 2))
	}
	q := s.G.Contract(super).Simple()
	want := 1 << 3
	if q.NumNodes() != want {
		t.Fatalf("clusters = %d", q.NumNodes())
	}
	if q.NumEdges() != want*(want-1)/2 {
		t.Errorf("cluster quotient edges = %d, want complete graph %d", q.NumEdges(), want*(want-1)/2)
	}
}

func BenchmarkNewHSN3x3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NewHSN(3, 3)
	}
}
