package swapnet

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"bfvlsi/internal/bitutil"
)

func dft(x []complex128) []complex128 {
	r := len(x)
	out := make([]complex128, r)
	for k := 0; k < r; k++ {
		var sum complex128
		for j := 0; j < r; j++ {
			angle := -2 * math.Pi * float64(j) * float64(k) / float64(r)
			sum += x[j] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

func maxErr(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// Appendix A.2: the recursive FFT algorithm executes on the swap network
// itself, using only existing links, and computes the DFT.
func TestDirectNetworkFFTMatchesDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, spec := range []bitutil.GroupSpec{
		bitutil.MustGroupSpec(3),
		bitutil.MustGroupSpec(2, 2),
		bitutil.MustGroupSpec(3, 2),
		bitutil.MustGroupSpec(2, 2, 2),
		bitutil.MustGroupSpec(3, 3, 3),
		bitutil.MustGroupSpec(2, 2, 1, 1),
	} {
		s := New(spec)
		x := make([]complex128, s.NumNodes())
		for i := range x {
			x[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
		}
		res, err := s.FFT(x)
		if err != nil {
			t.Fatalf("%v: %v", spec, err)
		}
		if e := maxErr(res.Output, dft(x)); e > 1e-9*float64(s.NumNodes()) {
			t.Errorf("%v: max error %v", spec, e)
		}
		wantSteps := spec.TotalBits() + spec.Levels() - 1
		if res.CommSteps != wantSteps {
			t.Errorf("%v: %d comm steps, want %d", spec, res.CommSteps, wantSteps)
		}
	}
}

func TestFFTLinkUsage(t *testing.T) {
	spec := bitutil.MustGroupSpec(2, 2)
	s := New(spec)
	res, err := s.FFT(make([]complex128, s.NumNodes()))
	if err != nil {
		t.Fatal(err)
	}
	// Every used link exists (by construction of useLink) and is used a
	// bounded number of times: nucleus dimension b is used once per
	// level whose group covers it; swap links once.
	for key, uses := range res.LinkUses {
		diff := key[0] ^ key[1]
		if diff&(diff-1) == 0 && diff < 4 {
			// nucleus link: dims 0..1 used once per level = 2
			if uses != 2 {
				t.Errorf("nucleus link %v used %d times, want 2", key, uses)
			}
		} else if uses != 1 {
			t.Errorf("swap link %v used %d times, want 1", key, uses)
		}
	}
	if res.MaxLinkUses() != 2 {
		t.Errorf("max link uses = %d, want 2", res.MaxLinkUses())
	}
}

func TestFFTLengthMismatch(t *testing.T) {
	s := New(bitutil.MustGroupSpec(2, 2))
	if _, err := s.FFT(make([]complex128, 3)); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestFFTImpulse(t *testing.T) {
	s := New(bitutil.MustGroupSpec(2, 1))
	x := make([]complex128, s.NumNodes())
	x[0] = 1
	res, err := s.FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range res.Output {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("X[%d] = %v, want 1", k, v)
		}
	}
}

func BenchmarkDirectFFT333(b *testing.B) {
	s := New(bitutil.MustGroupSpec(3, 3, 3))
	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, s.NumNodes())
	for i := range x {
		x[i] = complex(rng.Float64(), rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.FFT(x); err != nil {
			b.Fatal(err)
		}
	}
}
