package swapnet

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFTResult reports a direct-network FFT execution (Appendix A.2).
type FFTResult struct {
	// Output is the DFT of the input in natural order.
	Output []complex128
	// CommSteps counts communication steps: k_1 nucleus exchanges, then
	// for each level i >= 2 one inter-cluster forwarding step plus k_i
	// nucleus exchanges: n_l + l - 1 in total.
	CommSteps int
	// LinkUses counts how many communication steps used each undirected
	// link (keyed by canonical node pair). Every step uses each involved
	// link exactly once, so values bound the per-link bandwidth needed.
	LinkUses map[[2]int]int
}

// FFT executes the recursive FFT algorithm of Appendix A.2 on the swap
// network itself: nucleus steps exchange data over dimension links,
// inter-cluster steps forward data over level-i swap links. Every
// communication is checked against the network's actual adjacency - the
// algorithm cannot cheat by using links the topology does not have.
func (s *SwapNet) FFT(x []complex128) (*FFTResult, error) {
	n := s.Spec.TotalBits()
	size := int(s.Spec.Size())
	if len(x) != size {
		return nil, fmt.Errorf("swapnet: input length %d, network has %d nodes", len(x), size)
	}
	adj := s.adjacencySet()
	res := &FFTResult{LinkUses: make(map[[2]int]int)}

	// Load bit-reversed; track in-place indices through forwarding.
	cur := make([]complex128, size)
	nat := make([]int, size)
	for p := 0; p < size; p++ {
		cur[p] = x[reverse(p, n)]
		nat[p] = p
	}
	useLink := func(a, b int) error {
		if a == b {
			return nil // a swap fixed point forwards to itself: no link
		}
		key := [2]int{a, b}
		if a > b {
			key = [2]int{b, a}
		}
		if !adj[key] {
			return fmt.Errorf("swapnet: FFT would use non-existent link %d-%d", a, b)
		}
		res.LinkUses[key]++
		return nil
	}
	dim := 0
	nucleusPhase := func(k int) error {
		for b := 0; b < k; b++ {
			bit := 1 << uint(b)
			dimBit := 1 << uint(dim)
			for u := 0; u < size; u++ {
				if u&bit != 0 {
					continue
				}
				v := u ^ bit
				if err := useLink(u, v); err != nil {
					return err
				}
				pu, pv := nat[u], nat[v]
				if pu^pv != dimBit {
					return fmt.Errorf("swapnet: phase pairs indices %d,%d; want bit %d", pu, pv, dim)
				}
				lo, hi := u, v
				if pu&dimBit != 0 {
					lo, hi = v, u
				}
				j := nat[lo] & (dimBit - 1)
				w := cmplx.Exp(complex(0, -2*math.Pi*float64(j)/float64(2*dimBit)))
				tv := w * cur[hi]
				a := cur[lo]
				cur[lo], cur[hi] = a+tv, a-tv
			}
			dim++
			res.CommSteps++
		}
		return nil
	}
	if err := nucleusPhase(s.Spec.GroupWidth(1)); err != nil {
		return nil, err
	}
	for lvl := 2; lvl <= s.Spec.Levels(); lvl++ {
		// Inter-cluster forwarding: x -> swap(x) for every node, over
		// level-lvl links (an involution, so it is a pairwise exchange).
		nextCur := make([]complex128, size)
		nextNat := make([]int, size)
		for u := 0; u < size; u++ {
			v := int(s.Spec.SwapNeighbor(uint64(u), lvl))
			if u <= v {
				if err := useLink(u, v); err != nil {
					return nil, err
				}
			}
			nextCur[v] = cur[u]
			nextNat[v] = nat[u]
		}
		cur, nat = nextCur, nextNat
		res.CommSteps++
		if err := nucleusPhase(s.Spec.GroupWidth(lvl)); err != nil {
			return nil, err
		}
	}
	out := make([]complex128, size)
	for u := 0; u < size; u++ {
		out[nat[u]] = cur[u]
	}
	res.Output = out
	return res, nil
}

func (s *SwapNet) adjacencySet() map[[2]int]bool {
	adj := make(map[[2]int]bool, s.G.NumEdges())
	for _, e := range s.G.Edges() {
		adj[[2]int{e.U, e.V}] = true
	}
	return adj
}

// MaxLinkUses returns the largest per-link use count of an FFT run: the
// bandwidth a single link needs across the whole transform.
func (r *FFTResult) MaxLinkUses() int {
	max := 0
	for _, c := range r.LinkUses {
		if c > max {
			max = c
		}
	}
	return max
}

func reverse(v, width int) int {
	return int(bits.Reverse64(uint64(v)) >> uint(64-width))
}
