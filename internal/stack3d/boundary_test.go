package stack3d

import (
	"math"
	"strings"
	"testing"

	"bfvlsi/internal/bitutil"
)

// A spec literal bypasses NewGroupSpec's total-width cap, so Build's own
// checked arithmetic is what stands between a hostile spec and a silent
// overflow.
func TestBuildRejectsUnrepresentablePerPairCount(t *testing.T) {
	// k4 large enough that n - 2*k4 + 2 < 0: the per-pair link count
	// 2^(n-2k4+2) has no int representation.
	spec := bitutil.GroupSpec{Widths: []int{2, 2, 2, 60}}
	_, err := Build(spec, 2)
	if err == nil {
		t.Fatal("Build with k4=60 succeeded, want error")
	}
	if !strings.Contains(err.Error(), "per-pair") {
		t.Errorf("error = %v, want per-pair link count message", err)
	}
}

func TestModelFormulasRejectOutOfRange(t *testing.T) {
	cases := []struct{ n, k4 int }{{-1, 0}, {63, 1}, {5, 6}, {5, -1}}
	for _, c := range cases {
		if v := ModelVolume(c.n, c.k4, 4); !math.IsNaN(v) {
			t.Errorf("ModelVolume(%d,%d,4) = %v, want NaN", c.n, c.k4, v)
		}
		if v := OptimalSliceLayers(c.n, c.k4); !math.IsNaN(v) {
			t.Errorf("OptimalSliceLayers(%d,%d) = %v, want NaN", c.n, c.k4, v)
		}
	}
	// Exact edge of the valid range still computes.
	if v := OptimalSliceLayers(62, 0); math.IsNaN(v) || v <= 0 {
		t.Errorf("OptimalSliceLayers(62,0) = %v, want finite positive", v)
	}
}
