package stack3d

import (
	"math"
	"testing"

	"bfvlsi/internal/analysis"
	"bfvlsi/internal/bitutil"
	"bfvlsi/internal/thompson"
)

func TestBuildBasics(t *testing.T) {
	spec := bitutil.MustGroupSpec(2, 2, 2, 2)
	s, err := Build(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Copies != 4 {
		t.Errorf("copies = %d, want 4", s.Copies)
	}
	// Z-columns: perPair = 2^{8-4+2} = 64; floor(16/4) = 4 -> 256 = 2^n.
	if s.ZColumns != 256 {
		t.Errorf("z-columns = %d, want 256 = 2^n", s.ZColumns)
	}
	// Inter-copy links: 2R(1 - 1/4) = 2*256*3/4 = 384.
	if s.InterCopyLinks != 384 {
		t.Errorf("inter-copy links = %d, want 384", s.InterCopyLinks)
	}
	if s.FootprintArea() <= s.Slice.Stats().Area {
		t.Error("footprint did not grow for z-columns")
	}
	if s.Volume() != int64(s.Copies)*int64(s.SliceLayers)*s.FootprintArea() {
		t.Error("volume identity broken")
	}
}

func TestBuildRejectsNon4Level(t *testing.T) {
	if _, err := Build(bitutil.MustGroupSpec(2, 2, 2), 2); err == nil {
		t.Error("3-level spec accepted")
	}
}

func TestZColumnsAlways2ToN(t *testing.T) {
	for _, widths := range [][]int{{2, 2, 2, 2}, {3, 2, 2, 1}, {2, 2, 1, 1}, {3, 3, 2, 2}} {
		spec := bitutil.MustGroupSpec(widths...)
		s, err := Build(spec, 2)
		if err != nil {
			t.Fatal(err)
		}
		if s.ZColumns != 1<<uint(spec.TotalBits()) {
			t.Errorf("%v: z-columns %d, want 2^n = %d", spec, s.ZColumns, 1<<uint(spec.TotalBits()))
		}
	}
}

// Stacking beats the flat 2-D layout in volume once n is large enough
// relative to the available layer counts - the Section 4.2 motivation.
func TestStackBeatsFlatInModelVolume(t *testing.T) {
	// Model comparison at n = 20 (beyond buildable size: closed forms).
	n := 20
	flat := analysis.MultilayerVolume(n, 8) // 2-D with 8 layers
	stacked := OptimalModelVolume(n, 3)     // 8 active layers of slices
	if stacked >= flat {
		t.Errorf("stacked volume %.3g not below flat %.3g at n=%d", stacked, flat, n)
	}
}

func TestOptimalSliceLayersScaling(t *testing.T) {
	// L* = 2 * 2^{(n-3k4)/2}: doubling n by 2 quadruples... increases by
	// 2x per +2 in n. And the paper's Theta(sqrt(N)/log N): ratio to
	// 2^{n/2} is constant in n for fixed k4.
	r1 := OptimalSliceLayers(10, 1) / math.Exp2(5)
	r2 := OptimalSliceLayers(16, 1) / math.Exp2(8)
	if math.Abs(r1-r2) > 1e-9 {
		t.Errorf("L* not proportional to 2^{n/2}: %v vs %v", r1, r2)
	}
	// The optimum is a true minimum of the model.
	n, k4 := 14, 2
	opt := OptimalSliceLayers(n, k4)
	vOpt := ModelVolume(n, k4, opt)
	for _, f := range []float64{0.5, 0.8, 1.25, 2} {
		if v := ModelVolume(n, k4, opt*f); v < vOpt {
			t.Errorf("L=%v gives volume %v below optimum %v", opt*f, v, vOpt)
		}
	}
}

// The measured stack volume tracks the model within the block-floor
// effects already quantified for 2-D layouts.
func TestMeasuredVsModelVolume(t *testing.T) {
	spec := bitutil.MustGroupSpec(2, 2, 2, 2)
	s, err := Build(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	model := ModelVolume(spec.TotalBits(), 2, 4)
	ratio := float64(s.Volume()) / model
	if ratio < 1 || ratio > 40 {
		t.Errorf("measured/model volume ratio %v out of plausible band", ratio)
	}
}

// Multilayer slices reduce stack volume until the slice's block floor
// dominates, mirroring the 2-D behavior.
func TestSliceLayerSweep(t *testing.T) {
	spec := bitutil.MustGroupSpec(2, 2, 2, 1)
	v2, err := Build(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	v8, err := Build(spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Footprint shrinks with more slice layers...
	if v8.FootprintArea() >= v2.FootprintArea() {
		t.Errorf("footprint did not shrink: %d vs %d", v8.FootprintArea(), v2.FootprintArea())
	}
	// ...but volume grows once the floor dominates at this small n.
	if v8.Volume() < v2.Volume()/2 {
		t.Errorf("volume shrank implausibly: %d vs %d", v8.Volume(), v2.Volume())
	}
}

func TestBuildSliceIsValidated(t *testing.T) {
	spec := bitutil.MustGroupSpec(2, 2, 1, 1)
	s, err := Build(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Slice.Validate(); err != nil {
		t.Errorf("slice geometry invalid: %v", err)
	}
	if s.Slice.Spec.TotalBits() != 5 {
		t.Errorf("slice covers %d dims, want 5", s.Slice.Spec.TotalBits())
	}
	_ = thompson.NodeSide // document the dependency
}
