// Package stack3d models the multilayer 3-D grid layouts sketched at the
// end of Section 4.2 of the paper: with L_A > 1 active layers available,
// an n-dimensional butterfly with spec (k1, k2, k3, k4) is built as
// 2^{k4} stacked copies of a multilayer 2-D layout of its
// (k1 + k2 + k3)-dimensional sub-butterflies, with the level-4 swap links
// running vertically between copies "in a way similar to a collinear
// layout of a 2^{k4}-node complete graph".
//
// The in-plane slice is built and measured by package thompson (real
// geometry); the vertical dimension is modeled combinatorially: each
// inter-copy link occupies one z-column (a unit footprint punched through
// every slice it passes), and the z-columns are counted by the collinear
// analysis - c4 * floor(m4^2/4) columns, c4 = 2^{n - 2 k4 + 2} links per
// copy pair, which works out to exactly 2^n columns for any k4 >= 1.
//
// Minimizing total volume over the per-slice layer count reproduces the
// classic Theta((N / log N)^{3/2}) three-dimensional butterfly volume,
// with the paper's prescription L = Theta(sqrt(N)/log N).
package stack3d

import (
	"fmt"
	"math"

	"bfvlsi/internal/bitutil"
	"bfvlsi/internal/thompson"
)

// Stack is a stacked 3-D butterfly layout.
type Stack struct {
	// Spec has exactly four groups (k1, k2, k3, k4).
	Spec bitutil.GroupSpec
	// Copies = 2^{k4} active layers of slices.
	Copies int
	// SliceLayers is the wiring layer count of each 2-D slice.
	SliceLayers int
	// Slice is the built (k1,k2,k3) multilayer layout of one copy's
	// sub-butterfly; all copies are congruent.
	Slice *thompson.Result
	// ZColumns is the number of vertical inter-copy wire columns.
	ZColumns int
	// InterCopyLinks is the number of doubled level-4 swap links that
	// cross between copies.
	InterCopyLinks int
}

// Build constructs the stack. spec must have four groups; sliceLayers is
// the wiring layer count used inside each slice (>= 2).
func Build(spec bitutil.GroupSpec, sliceLayers int) (*Stack, error) {
	if spec.Levels() != 4 {
		return nil, fmt.Errorf("stack3d: need a 4-level spec, got %v", spec)
	}
	k4 := spec.GroupWidth(4)
	sub, err := bitutil.NewGroupSpec(spec.Widths[0], spec.Widths[1], spec.Widths[2])
	if err != nil {
		return nil, err
	}
	params := thompson.Params{Spec: sub}
	if sliceLayers != 2 {
		params.Layers = sliceLayers
		params.Multilayer = true
	}
	slice, err := thompson.Build(params)
	if err != nil {
		return nil, err
	}
	n := spec.TotalBits()
	m4 := 1 << uint(k4)
	// Links per unordered copy pair: 2^{n - 2 k4 + 2}; z-columns by the
	// collinear assignment: perPair * floor(m4^2 / 4) = 2^n (k4 >= 1).
	perPair, ok := bitutil.CheckedShl(1, n-2*k4+2)
	if !ok {
		return nil, fmt.Errorf("stack3d: per-pair link count 2^(n-2k4+2) not representable for spec %v", spec)
	}
	m4sq, ok := bitutil.CheckedMul(m4, m4)
	if !ok {
		return nil, fmt.Errorf("stack3d: copy-pair count 2^(2k4) overflows int for spec %v", spec)
	}
	zCols, ok := bitutil.CheckedMul(perPair, m4sq/4)
	if !ok {
		return nil, fmt.Errorf("stack3d: z-column count overflows int for spec %v", spec)
	}
	// Inter-copy links: 2R(1 - 2^{-k4}).
	rows := 1 << uint(n)
	inter, ok := bitutil.CheckedMul(2, rows-rows>>uint(k4))
	if !ok {
		return nil, fmt.Errorf("stack3d: inter-copy link count overflows int for spec %v", spec)
	}
	return &Stack{
		Spec:           spec,
		Copies:         m4,
		SliceLayers:    slice.Layers,
		Slice:          slice,
		ZColumns:       zCols,
		InterCopyLinks: inter,
	}, nil
}

// FootprintArea returns the in-plane area of the stack: the measured
// slice area plus one unit per z-column (the columns puncture every
// slice, so they enlarge the common footprint).
func (s *Stack) FootprintArea() int64 {
	return s.Slice.Stats().Area + int64(s.ZColumns)
}

// Volume returns layers x footprint: copies x sliceLayers wiring layers,
// all sharing the footprint.
func (s *Stack) Volume() int64 {
	return int64(s.Copies) * int64(s.SliceLayers) * s.FootprintArea()
}

// ModelVolume is the closed-form volume of the stack model for an
// n-dimensional butterfly split as (n-k4, k4) with per-slice layer count
// L: 2^{k4} * L * (4 * 2^{2(n-k4)} / L^2 + 2^n).
func ModelVolume(n, k4 int, L float64) float64 {
	if n < 0 || n > 62 || k4 < 0 || k4 > n {
		return math.NaN()
	}
	slice := 4 * math.Exp2(float64(2*(n-k4))) / (L * L)
	z := math.Exp2(float64(n))
	return math.Exp2(float64(k4)) * L * (slice + z)
}

// OptimalSliceLayers returns the L minimizing ModelVolume for the given
// split: setting dV/dL = 0 in V = 2^{k4}(4*2^{2(n-k4)}/L + L*2^n) gives
// L* = 2 * 2^{(n - 2 k4)/2} - the paper's L = Theta(sqrt(N)/log N) for
// constant k4.
func OptimalSliceLayers(n, k4 int) float64 {
	if n < 0 || n > 62 || k4 < 0 || k4 > n {
		return math.NaN()
	}
	return 2 * math.Exp2(float64(n-2*k4)/2)
}

// OptimalModelVolume returns the volume at the optimal L: evaluating the
// model there yields 2^{k4+2} * 2^{(3n - 2 k4)/2}, i.e. Theta(2^{3n/2})
// = Theta((N / log N)^{3/2}).
func OptimalModelVolume(n, k4 int) float64 {
	return ModelVolume(n, k4, OptimalSliceLayers(n, k4))
}
