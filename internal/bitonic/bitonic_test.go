package bitonic

import (
	"math/rand"
	"sort"
	"testing"

	"bfvlsi/internal/grid"
)

func TestStageAndComparatorCounts(t *testing.T) {
	for n := 1; n <= 6; n++ {
		net := New(n)
		wantStages := n * (n + 1) / 2
		if len(net.Stages) != wantStages {
			t.Errorf("n=%d: %d stages, want %d", n, len(net.Stages), wantStages)
		}
		wantComps := (1 << uint(n-1)) * wantStages
		if net.NumComparators() != wantComps {
			t.Errorf("n=%d: %d comparators, want %d", n, net.NumComparators(), wantComps)
		}
	}
}

// The zero-one principle: a comparator network sorts all inputs iff it
// sorts all 0-1 inputs. Exhaustive over 2^(2^n) 0-1 vectors for n <= 4.
func TestZeroOnePrinciple(t *testing.T) {
	for n := 1; n <= 4; n++ {
		net := New(n)
		wires := net.Wires
		for mask := 0; mask < 1<<uint(wires); mask++ {
			xs := make([]int, wires)
			for i := range xs {
				xs[i] = (mask >> uint(i)) & 1
			}
			if err := net.Check(xs); err != nil {
				t.Fatalf("n=%d mask=%b: %v", n, mask, err)
			}
		}
	}
}

func TestSortRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{3, 5, 7, 9} {
		net := New(n)
		for trial := 0; trial < 20; trial++ {
			xs := make([]int, net.Wires)
			for i := range xs {
				xs[i] = rng.Intn(1000) - 500
			}
			out, err := net.Sort(xs)
			if err != nil {
				t.Fatal(err)
			}
			want := append([]int(nil), xs...)
			sort.Ints(want)
			for i := range want {
				if out[i] != want[i] {
					t.Fatalf("n=%d: out[%d]=%d want %d", n, i, out[i], want[i])
				}
			}
		}
	}
}

func TestSortPreservesMultiset(t *testing.T) {
	net := New(5)
	rng := rand.New(rand.NewSource(9))
	xs := make([]int, net.Wires)
	for i := range xs {
		xs[i] = rng.Intn(10)
	}
	out, err := net.Sort(xs)
	if err != nil {
		t.Fatal(err)
	}
	count := map[int]int{}
	for _, v := range xs {
		count[v]++
	}
	for _, v := range out {
		count[v]--
	}
	for k, c := range count {
		if c != 0 {
			t.Errorf("value %d multiplicity changed by %d", k, c)
		}
	}
}

func TestSortLengthMismatch(t *testing.T) {
	if _, err := New(3).Sort(make([]int, 7)); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestGraphStructure(t *testing.T) {
	net := New(3)
	g := net.Graph()
	cols := len(net.Stages) + 1
	if g.NumNodes() != cols*8 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// 4 edges per comparator.
	if g.NumEdges() != 4*net.NumComparators() {
		t.Errorf("edges = %d, want %d", g.NumEdges(), 4*net.NumComparators())
	}
	if !g.Connected() {
		t.Error("sorter graph disconnected")
	}
}

func TestLayoutValidates(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4} {
		net := New(n)
		l, err := net.Layout()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := l.Validate(grid.ValidateOptions{
			CheckNodeInteriors:      true,
			RequireTerminalsOnNodes: true,
		}); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
		wantWires := len(net.Stages)*net.Wires + 2*net.NumComparators()
		if got := len(l.Wires); got != wantWires {
			t.Errorf("n=%d: %d wires, want %d", n, got, wantWires)
		}
	}
}

func TestLayoutAreaGrowth(t *testing.T) {
	// The column-by-column layout has width Theta(sum of stage widths)
	// ~ O(2^n * n^2 / ...) and height Theta(2^n): quadratic-ish area in
	// the wire count; just pin down sane monotone growth.
	prev := int64(0)
	for _, n := range []int{2, 3, 4, 5} {
		l, err := New(n).Layout()
		if err != nil {
			t.Fatal(err)
		}
		a := l.Stats().Area
		if a <= prev {
			t.Errorf("n=%d: area %d did not grow", n, a)
		}
		prev = a
	}
}

func BenchmarkSortN8(b *testing.B) {
	net := New(8)
	rng := rand.New(rand.NewSource(1))
	xs := make([]int, net.Wires)
	for i := range xs {
		xs[i] = rng.Int()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Sort(xs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLayoutN5(b *testing.B) {
	net := New(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Layout(); err != nil {
			b.Fatal(err)
		}
	}
}
