// Package bitonic implements Batcher's bitonic sorting network, the
// multistage comparator fabric whose VLSI layout the paper cites as a
// companion problem ([11] Even, Muthukrishnan, Paterson, Sahinalp,
// "Layout of the Batcher bitonic sorter"). Each comparator stage pairs
// wires that differ in one address bit - the same connectivity pattern as
// a butterfly stage - so the sorter rides on the exact substrates this
// repository builds: its stage graph is generated here, its comparator
// schedule is executable, and its columns can be channel-routed like any
// butterfly step.
package bitonic

import (
	"fmt"
	"sort"

	"bfvlsi/internal/channel"
	"bfvlsi/internal/geom"
	"bfvlsi/internal/graph"
	"bfvlsi/internal/grid"
)

// Comparator orders the values on wires Lo and Hi so that the smaller
// ends up on Lo when Ascending (on Hi otherwise).
type Comparator struct {
	Lo, Hi    int
	Ascending bool
}

// Network is a Batcher bitonic sorting network on 2^n wires.
type Network struct {
	N      int // wires = 2^N
	Wires  int
	Stages [][]Comparator
}

// New builds the sorting network: N(N+1)/2 stages of 2^{N-1} comparators.
// Stage (k, j) with k = 1..N, j = k-1..0 pairs wires differing in bit j;
// the direction follows the standard bitonic pattern (bit k of the wire
// index selects descending).
func New(n int) *Network {
	if n < 1 || n > 20 {
		panic(fmt.Sprintf("bitonic: dimension %d out of range [1,20]", n))
	}
	wires := 1 << uint(n)
	net := &Network{N: n, Wires: wires}
	for k := 1; k <= n; k++ {
		for j := k - 1; j >= 0; j-- {
			var stage []Comparator
			bit := 1 << uint(j)
			for w := 0; w < wires; w++ {
				if w&bit != 0 {
					continue
				}
				asc := w&(1<<uint(k)) == 0
				stage = append(stage, Comparator{Lo: w, Hi: w | bit, Ascending: asc})
			}
			net.Stages = append(net.Stages, stage)
		}
	}
	return net
}

// NumComparators returns the total comparator count: 2^{N-1} * N(N+1)/2.
func (net *Network) NumComparators() int {
	total := 0
	for _, s := range net.Stages {
		total += len(s)
	}
	return total
}

// Sort runs the comparator schedule on a copy of xs (len 2^N) and
// returns the sorted result.
func (net *Network) Sort(xs []int) ([]int, error) {
	if len(xs) != net.Wires {
		return nil, fmt.Errorf("bitonic: %d values on %d wires", len(xs), net.Wires)
	}
	v := append([]int(nil), xs...)
	for _, stage := range net.Stages {
		for _, c := range stage {
			a, b := v[c.Lo], v[c.Hi]
			if (a > b) == c.Ascending {
				v[c.Lo], v[c.Hi] = b, a
			}
		}
	}
	return v, nil
}

// Check verifies that the network sorts the given input; by the zero-one
// principle, checking all 0-1 inputs proves it sorts everything (see the
// tests).
func (net *Network) Check(xs []int) error {
	out, err := net.Sort(xs)
	if err != nil {
		return err
	}
	if !sort.IntsAreSorted(out) {
		return fmt.Errorf("bitonic: output not sorted: %v", out)
	}
	return nil
}

// Graph returns the wire-level stage graph: S+1 columns of 2^N wire
// nodes (S = number of stages), with a straight and a cross edge per
// comparator - structurally a sequence of butterfly steps, which is why
// the paper's layout machinery applies.
func (net *Network) Graph() *graph.Graph {
	cols := len(net.Stages) + 1
	g := graph.New(cols * net.Wires)
	id := func(c, w int) int { return c*net.Wires + w }
	for s, stage := range net.Stages {
		for _, c := range stage {
			g.AddEdge(id(s, c.Lo), id(s+1, c.Lo), graph.KindStraight)
			g.AddEdge(id(s, c.Hi), id(s+1, c.Hi), graph.KindStraight)
			g.AddEdge(id(s, c.Lo), id(s+1, c.Hi), graph.KindCross)
			g.AddEdge(id(s, c.Hi), id(s+1, c.Lo), graph.KindCross)
		}
	}
	return g
}

// Layout channel-routes the sorter column by column (each wire a 4x4
// node box per column, each stage a routed channel), yielding a valid
// Thompson-model layout of the full fabric.
func (net *Network) Layout() (*grid.Layout, error) {
	const side = 4
	rowPitch := side
	l := grid.NewLayout(grid.Thompson, 2)
	cols := len(net.Stages) + 1
	// Pass 1: route every channel to find widths.
	plans := make([]*channel.Plan, len(net.Stages))
	nets := make([][]channel.Net, len(net.Stages))
	widths := make([]int, len(net.Stages))
	for s, stage := range net.Stages {
		var ns []channel.Net
		for w := 0; w < net.Wires; w++ {
			ns = append(ns, channel.Net{
				Label: fmt.Sprintf("s%d.%d", w, s),
				LeftY: w*rowPitch + 0, RightY: w*rowPitch + 0,
			})
		}
		for _, c := range stage {
			ns = append(ns,
				channel.Net{
					Label: fmt.Sprintf("c%d.%d", c.Lo, s),
					LeftY: c.Lo*rowPitch + 1, RightY: c.Hi*rowPitch + 2,
				},
				channel.Net{
					Label: fmt.Sprintf("c%d.%d", c.Hi, s),
					LeftY: c.Hi*rowPitch + 1, RightY: c.Lo*rowPitch + 2,
				})
		}
		plan, err := channel.Route(ns)
		if err != nil {
			return nil, fmt.Errorf("bitonic: stage %d: %v", s, err)
		}
		plans[s], nets[s], widths[s] = plan, ns, plan.Tracks
	}
	// Pass 2: place nodes and realize.
	colX := make([]int, cols)
	x := 0
	for s := 0; s < cols; s++ {
		colX[s] = x
		if s < len(net.Stages) {
			x += side + widths[s]
		}
	}
	for s := 0; s < cols; s++ {
		for w := 0; w < net.Wires; w++ {
			x0, y0 := colX[s], w*rowPitch
			l.AddNode(fmt.Sprintf("n%d.%d", w, s),
				geom.NewRect(x0, y0, x0+side-1, y0+side-1))
		}
	}
	for s := range net.Stages {
		xLeft := colX[s] + side - 1
		xRight := colX[s+1]
		trackX := func(t int) int { return xLeft + 1 + t }
		if err := channel.Realize(l, nets[s], plans[s], xLeft, xRight, trackX); err != nil {
			return nil, err
		}
	}
	return l, nil
}
