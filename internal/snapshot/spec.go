// Package snapshot implements deterministic checkpoint/restore of the
// full routing-simulator stack: the stepwise engine (routing.Sim), the
// reliable transport, the adaptive router, and the fault plan. A
// Checkpoint captures a run at a cycle boundary as a versioned,
// content-addressed wire frame (the internal/wire idiom: canonical
// encoding, decode-then-re-encode byte identity, SHA-256 of the bytes
// as the key), and Restore rebuilds a run that continues
// packet-for-packet — and trace-byte — identical to the uninterrupted
// one, with every conservation identity intact across the boundary.
//
// The fault plan needs no serialized state at all: it is rebuilt from
// its wire.FaultSpec recipe, and its BeginCycle replays events up to
// the restore cycle deterministically. The RNG streams are serialized
// as draw counts (see internal/detrng): restore re-seeds and
// fast-forwards, which costs O(draws) — trivial next to re-simulating
// the cycles that consumed them.
//
// Fork is the what-if primitive on top: it restores a checkpoint under
// a different fault plan, so one warmed-up prefix can fan out into
// many fault scenarios (see internal/sweepfarm).
package snapshot

import (
	"fmt"
	"io"

	"bfvlsi/internal/adaptive"
	"bfvlsi/internal/faults"
	"bfvlsi/internal/reliable"
	"bfvlsi/internal/routing"
	"bfvlsi/internal/wire"
)

// ReliableSpec is the plain-data recipe for a reliable.Transport: its
// Config plus the latency measurement gate.
type ReliableSpec struct {
	Timeout     int
	MaxRetries  int
	Jitter      int
	MaxTimeout  int
	Seed        int64
	MeasureFrom int
}

// Config returns the reliable.Config the spec describes.
func (s *ReliableSpec) Config() reliable.Config {
	return reliable.Config{
		Timeout: s.Timeout, MaxRetries: s.MaxRetries, Jitter: s.Jitter,
		MaxTimeout: s.MaxTimeout, Seed: s.Seed,
	}
}

// Validate checks the spec's invariants.
func (s *ReliableSpec) Validate() error {
	if err := s.Config().Validate(); err != nil {
		return err
	}
	if s.MeasureFrom < 0 {
		return fmt.Errorf("snapshot: negative MeasureFrom %d", s.MeasureFrom)
	}
	return nil
}

// AdaptiveSpec is the plain-data recipe for an adaptive.Router: its
// Config (zero fields select adaptive defaults at Reset).
type AdaptiveSpec struct {
	Threshold     int
	ProbeInterval int
	MaxDetours    int
	Epoch         int
	Seed          int64
}

// Config returns the adaptive.Config the spec describes.
func (s *AdaptiveSpec) Config() adaptive.Config {
	return adaptive.Config{
		Threshold: s.Threshold, ProbeInterval: s.ProbeInterval,
		MaxDetours: s.MaxDetours, Epoch: s.Epoch, Seed: s.Seed,
	}
}

// Validate checks the spec's invariants.
func (s *AdaptiveSpec) Validate() error {
	if s.Threshold < 0 || s.ProbeInterval < 0 || s.MaxDetours < 0 || s.Epoch < 0 {
		return fmt.Errorf("snapshot: negative adaptive config field %+v", *s)
	}
	return nil
}

// Spec describes a complete simulator stack: the routing configuration
// (with optional fault-plan recipe) plus optional reliable-transport
// and adaptive-router recipes. It is everything needed to rebuild the
// stack from nothing — the static half of a checkpoint.
type Spec struct {
	Route    wire.RouteSpec
	Reliable *ReliableSpec
	Adaptive *AdaptiveSpec
}

// Validate checks the spec's invariants.
func (s *Spec) Validate() error {
	if err := s.Route.Validate(); err != nil {
		return err
	}
	if s.Reliable != nil {
		if err := s.Reliable.Validate(); err != nil {
			return err
		}
	}
	if s.Adaptive != nil {
		if err := s.Adaptive.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// EffectiveTTL returns the TTL the run actually uses: the spec's, or
// faults.DefaultTTL when a fault plan is attached and the spec leaves
// TTL 0 (the same convention as wire.RouteSpec.Run, so trapped packets
// are dropped and accounted rather than pooling in Backlog forever).
func (s *Spec) EffectiveTTL() int {
	if s.Route.TTL == 0 && s.faulted() {
		return faults.DefaultTTL(s.Route.N)
	}
	return s.Route.TTL
}

func (s *Spec) faulted() bool {
	return s.Route.Fault != nil && !s.Route.Fault.IsZero()
}

// MarshalBinary implements encoding.BinaryMarshaler: a TypeSimSpec
// frame embedding the canonical RouteSpec frame.
func (s *Spec) MarshalBinary() ([]byte, error) {
	routeBytes, err := s.Route.MarshalBinary()
	if err != nil {
		return nil, err
	}
	if s.Reliable != nil {
		if s.Reliable.Timeout < 0 || s.Reliable.MaxRetries < 0 || s.Reliable.Jitter < 0 ||
			s.Reliable.MaxTimeout < 0 || s.Reliable.MeasureFrom < 0 {
			return nil, fmt.Errorf("snapshot: reliable spec has negative fields")
		}
	}
	if s.Adaptive != nil {
		if err := s.Adaptive.Validate(); err != nil {
			return nil, err
		}
	}
	e := wire.NewEncoder(wire.TypeSimSpec, wire.VersionSimSpec)
	e.Bytes(routeBytes)
	e.Bool(s.Reliable != nil)
	if s.Reliable != nil {
		e.Uint(s.Reliable.Timeout)
		e.Uint(s.Reliable.MaxRetries)
		e.Uint(s.Reliable.Jitter)
		e.Uint(s.Reliable.MaxTimeout)
		e.Varint(s.Reliable.Seed)
		e.Uint(s.Reliable.MeasureFrom)
	}
	e.Bool(s.Adaptive != nil)
	if s.Adaptive != nil {
		e.Uint(s.Adaptive.Threshold)
		e.Uint(s.Adaptive.ProbeInterval)
		e.Uint(s.Adaptive.MaxDetours)
		e.Uint(s.Adaptive.Epoch)
		e.Varint(s.Adaptive.Seed)
	}
	return e.Encoding(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The decode is
// structural (canonical form enforced, semantics checked by Validate
// or Restore): Unmarshal(b) == nil implies re-encoding reproduces b.
func (s *Spec) UnmarshalBinary(data []byte) error {
	d := wire.NewDecoder(data, wire.TypeSimSpec, wire.VersionSimSpec)
	var out Spec
	routeBytes := d.Bytes()
	if d.Err() == nil {
		if err := out.Route.UnmarshalBinary(routeBytes); err != nil {
			return fmt.Errorf("snapshot: embedded route spec: %w", err)
		}
	}
	if d.Bool() {
		out.Reliable = &ReliableSpec{
			Timeout:     d.Uint(),
			MaxRetries:  d.Uint(),
			Jitter:      d.Uint(),
			MaxTimeout:  d.Uint(),
			Seed:        d.Varint(),
			MeasureFrom: d.Uint(),
		}
	}
	if d.Bool() {
		out.Adaptive = &AdaptiveSpec{
			Threshold:     d.Uint(),
			ProbeInterval: d.Uint(),
			MaxDetours:    d.Uint(),
			Epoch:         d.Uint(),
			Seed:          d.Varint(),
		}
	}
	if err := d.Finish(); err != nil {
		return err
	}
	*s = out
	return nil
}

// Run is a live simulator stack: the stepwise engine plus the hook
// implementations built from the Spec. Create with Start or
// Checkpoint.Restore/Fork; a Run must not be shared by concurrently
// running goroutines.
type Run struct {
	Spec Spec
	Sim  *routing.Sim
	// Transport and Router are the live hook implementations, nil when
	// the spec attaches none; read their Stats after Finish.
	Transport *reliable.Transport
	Router    *adaptive.Router
}

// params builds the routing.Params and hook instances for the spec.
func (s *Spec) params(trace io.Writer) (routing.Params, *reliable.Transport, *adaptive.Router, error) {
	p := routing.Params{
		N:           s.Route.N,
		Lambda:      s.Route.Lambda,
		Warmup:      s.Route.Warmup,
		Cycles:      s.Route.Cycles,
		Seed:        s.Route.Seed,
		BufferLimit: s.Route.BufferLimit,
		TTL:         s.EffectiveTTL(),
		Policy:      s.Route.Policy,
		Trace:       trace,
	}
	if s.faulted() {
		plan, err := s.Route.Fault.Build()
		if err != nil {
			return routing.Params{}, nil, nil, err
		}
		p.Faults = plan
	}
	var transport *reliable.Transport
	if s.Reliable != nil {
		t, err := reliable.New(s.Reliable.Config())
		if err != nil {
			return routing.Params{}, nil, nil, err
		}
		t.MeasureFrom = s.Reliable.MeasureFrom
		transport = t
		p.Reliable = t
	}
	var router *adaptive.Router
	if s.Adaptive != nil {
		r, err := adaptive.New(s.Adaptive.Config())
		if err != nil {
			return routing.Params{}, nil, nil, err
		}
		router = r
		p.Adaptive = r
	}
	return p, transport, router, nil
}

// Start validates the spec and builds a fresh run positioned before
// cycle 0, its trace (if any) already carrying the header line.
func Start(spec Spec, trace io.Writer) (*Run, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	p, transport, router, err := spec.params(trace)
	if err != nil {
		return nil, err
	}
	sim, err := routing.NewSim(p, spec.Route.Pattern)
	if err != nil {
		return nil, err
	}
	return &Run{Spec: spec, Sim: sim, Transport: transport, Router: router}, nil
}

// StepTo advances the run to the given cycle boundary.
func (r *Run) StepTo(cycle int) error {
	if cycle < r.Sim.Cycle() || cycle > r.Sim.Total() {
		return fmt.Errorf("snapshot: cannot step to cycle %d from %d (total %d)", cycle, r.Sim.Cycle(), r.Sim.Total())
	}
	for r.Sim.Cycle() < cycle {
		if err := r.Sim.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Finish runs the remaining cycles and returns the final result,
// verified against the conservation identities.
func (r *Run) Finish() (*routing.Result, error) {
	res, err := r.Sim.Finish()
	if err != nil {
		return nil, err
	}
	if err := res.CheckConservation(); err != nil {
		return nil, err
	}
	return res, nil
}

// Checkpoint captures the run's complete state at the current cycle
// boundary. The checkpoint shares no mutable state with the run.
func (r *Run) Checkpoint() *Checkpoint {
	c := &Checkpoint{Spec: r.Spec, Sim: *r.Sim.State()}
	if r.Transport != nil {
		c.Reliable = r.Transport.State()
	}
	if r.Router != nil {
		c.Adaptive = r.Router.State()
	}
	return c
}
