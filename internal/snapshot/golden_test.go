package snapshot

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden snapshot frames")

// TestGoldenFrames pins the encoded bytes of the snapshot wire types —
// a fully loaded Spec and a mid-run Checkpoint of the deepest stack
// (VC + faults + reliable + adaptive) — against committed frames. The
// checkpoint is deterministic by the restore-determinism contract, so
// its bytes are a stable fingerprint of both the encoder and the
// simulator. Regenerate deliberately with
// `go test ./internal/snapshot -run TestGoldenFrames -update`.
func TestGoldenFrames(t *testing.T) {
	specs := testSpecs()
	spec := specs[len(specs)-1].Spec // vc-faults-reliable-adaptive
	run, err := Start(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := run.StepTo(45); err != nil {
		t.Fatal(err)
	}
	ck := run.Checkpoint()

	frames := []struct {
		name string
		data func() ([]byte, error)
	}{
		{"spec", spec.MarshalBinary},
		{"checkpoint", ck.MarshalBinary},
	}
	for _, fr := range frames {
		t.Run(fr.name, func(t *testing.T) {
			got, err := fr.data()
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			path := filepath.Join("testdata", "golden", fr.name+".bin")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden frame missing (regenerate with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("encoding of %s drifted from the golden frame (%d vs %d bytes)", fr.name, len(got), len(want))
			}
		})
	}

	// The committed checkpoint must still decode and resume: archived
	// checkpoints written by old binaries stay usable.
	want, err := os.ReadFile(filepath.Join("testdata", "golden", "checkpoint.bin"))
	if err != nil {
		t.Fatalf("golden checkpoint missing (regenerate with -update): %v", err)
	}
	var dec Checkpoint
	if err := dec.UnmarshalBinary(want); err != nil {
		t.Fatalf("committed checkpoint no longer decodes: %v", err)
	}
	again, err := dec.MarshalBinary()
	if err != nil {
		t.Fatalf("re-marshal of committed checkpoint: %v", err)
	}
	if !bytes.Equal(again, want) {
		t.Error("decode+re-encode of the committed checkpoint differs")
	}
	restored, err := dec.Restore(nil)
	if err != nil {
		t.Fatalf("committed checkpoint does not restore: %v", err)
	}
	if restored.Sim.Cycle() != 45 {
		t.Errorf("restored run resumes at cycle %d, want 45", restored.Sim.Cycle())
	}
}
