package snapshot

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"bfvlsi/internal/routing"
	"bfvlsi/internal/wire"
)

// testFault is a small but busy fault plan for n=3: background link
// deaths plus transient faults that repair mid-run.
func testFault() *wire.FaultSpec {
	return &wire.FaultSpec{
		N: 3, LinkRate: 0.04, NodeRate: 0.02, Seed: 3,
		TransientCount: 3, TransientHorizon: 80, TransientRepair: 12,
	}
}

// testSpecs returns the five simulator-stack configurations the
// restore-determinism contract is pinned on: plain, VC, faulted plain,
// and the faulted VC stack with reliable transport alone and with the
// adaptive router on top.
func testSpecs() []struct {
	Name string
	Spec Spec
} {
	route := wire.RouteSpec{N: 3, Lambda: 0.30, Warmup: 30, Cycles: 90, Seed: 11}
	vc := route
	vc.BufferLimit = 4
	vc.Pattern = routing.Shuffle
	plainFault := route
	plainFault.Fault = testFault()
	vcRel := vc
	vcRel.Fault = testFault()
	vcRel.TTL = 48
	rel := &ReliableSpec{Timeout: 12, MaxRetries: 4, Jitter: 3, Seed: 5, MeasureFrom: 30}
	vcAd := vcRel
	full := []struct {
		Name string
		Spec Spec
	}{
		{"plain", Spec{Route: route}},
		{"vc", Spec{Route: vc}},
		{"plain-faults", Spec{Route: plainFault}},
		{"vc-faults-reliable", Spec{Route: vcRel, Reliable: rel}},
		{"vc-faults-reliable-adaptive", Spec{Route: vcAd, Reliable: rel,
			Adaptive: &AdaptiveSpec{Threshold: 2, ProbeInterval: 12, MaxDetours: 3, Epoch: 16, Seed: 9}}},
	}
	return full
}

// finishRun finishes r and collects its hook stats alongside, so full
// and restored runs can be compared wholesale.
type runOutcome struct {
	Res      *routing.Result
	Reliable interface{}
	Adaptive interface{}
}

func finishRun(t *testing.T, r *Run) runOutcome {
	t.Helper()
	res, err := r.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	out := runOutcome{Res: res}
	if r.Transport != nil {
		out.Reliable = r.Transport.Stats()
	}
	if r.Router != nil {
		out.Adaptive = r.Router.Stats()
	}
	return out
}

// TestCheckpointRestoreGolden is the tentpole contract: a run cut at an
// arbitrary cycle boundary, checkpointed, serialized, decoded, and
// restored must continue packet-for-packet identical to the
// uninterrupted run - same final counters, same hook stats, and a
// continuation trace that concatenates byte-identically with the
// prefix trace.
func TestCheckpointRestoreGolden(t *testing.T) {
	for _, tc := range testSpecs() {
		t.Run(tc.Name, func(t *testing.T) {
			var fullTrace bytes.Buffer
			fr, err := Start(tc.Spec, &fullTrace)
			if err != nil {
				t.Fatalf("Start: %v", err)
			}
			want := finishRun(t, fr)
			total := tc.Spec.Route.Warmup + tc.Spec.Route.Cycles

			for _, cut := range []int{0, 1, total / 3, 2 * total / 3, total - 1, total} {
				var prefix bytes.Buffer
				r, err := Start(tc.Spec, &prefix)
				if err != nil {
					t.Fatalf("cut %d: Start: %v", cut, err)
				}
				if err := r.StepTo(cut); err != nil {
					t.Fatalf("cut %d: StepTo: %v", cut, err)
				}
				ck := r.Checkpoint()

				enc, err := ck.MarshalBinary()
				if err != nil {
					t.Fatalf("cut %d: MarshalBinary: %v", cut, err)
				}
				var decoded Checkpoint
				if err := decoded.UnmarshalBinary(enc); err != nil {
					t.Fatalf("cut %d: UnmarshalBinary: %v", cut, err)
				}
				re, err := decoded.MarshalBinary()
				if err != nil {
					t.Fatalf("cut %d: re-marshal: %v", cut, err)
				}
				if !bytes.Equal(enc, re) {
					t.Fatalf("cut %d: re-encode is not byte-identical (%d vs %d bytes)", cut, len(enc), len(re))
				}
				k1, err := ck.Key()
				if err != nil {
					t.Fatalf("cut %d: Key: %v", cut, err)
				}
				k2, err := decoded.Key()
				if err != nil || k1 != k2 {
					t.Fatalf("cut %d: content address changed across decode (%x vs %x, err %v)", cut, k1, k2, err)
				}

				var cont bytes.Buffer
				r2, err := decoded.Restore(&cont)
				if err != nil {
					t.Fatalf("cut %d: Restore: %v", cut, err)
				}
				got := finishRun(t, r2)
				if !reflect.DeepEqual(want.Res, got.Res) {
					t.Fatalf("cut %d: restored result diverged:\nfull:     %+v\nrestored: %+v", cut, want.Res, got.Res)
				}
				if !reflect.DeepEqual(want.Reliable, got.Reliable) {
					t.Fatalf("cut %d: restored transport stats diverged:\nfull:     %+v\nrestored: %+v", cut, want.Reliable, got.Reliable)
				}
				if !reflect.DeepEqual(want.Adaptive, got.Adaptive) {
					t.Fatalf("cut %d: restored router stats diverged:\nfull:     %+v\nrestored: %+v", cut, want.Adaptive, got.Adaptive)
				}
				if joined := prefix.String() + cont.String(); joined != fullTrace.String() {
					t.Fatalf("cut %d: prefix+continuation trace is not byte-identical to the uninterrupted trace", cut)
				}
			}
		})
	}
}

// TestSpecRoundTrip pins the TypeSimSpec frame: marshal/unmarshal/
// re-marshal byte identity for every stack configuration.
func TestSpecRoundTrip(t *testing.T) {
	for _, tc := range testSpecs() {
		enc, err := tc.Spec.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: MarshalBinary: %v", tc.Name, err)
		}
		var out Spec
		if err := out.UnmarshalBinary(enc); err != nil {
			t.Fatalf("%s: UnmarshalBinary: %v", tc.Name, err)
		}
		if !reflect.DeepEqual(tc.Spec, out) {
			t.Fatalf("%s: decoded spec differs:\nin:  %+v\nout: %+v", tc.Name, tc.Spec, out)
		}
		re, err := out.MarshalBinary()
		if err != nil || !bytes.Equal(enc, re) {
			t.Fatalf("%s: re-encode not byte-identical (err %v)", tc.Name, err)
		}
	}
}

// TestForkWhatIf pins the what-if primitive: forking one warmed-up
// checkpoint into a fault future is deterministic, conserves packets,
// actually diverges from the fault-free continuation, and forking the
// fault away restores the base behaviour.
func TestForkWhatIf(t *testing.T) {
	spec := testSpecs()[1].Spec // vc, fault-free
	r, err := Start(spec, nil)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := r.StepTo(spec.Route.Warmup); err != nil {
		t.Fatalf("StepTo: %v", err)
	}
	ck := r.Checkpoint()

	fault := testFault()
	f1, err := ck.Fork(fault, nil)
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	if got, want := f1.Spec.EffectiveTTL(), spec.Route.TTL; got == want {
		t.Fatalf("forked run kept TTL %d; a faulted fork must pick up the default TTL", got)
	}
	res1, err := f1.Finish()
	if err != nil {
		t.Fatalf("forked Finish: %v", err)
	}
	f2, err := ck.Fork(fault, nil)
	if err != nil {
		t.Fatalf("second Fork: %v", err)
	}
	res2, err := f2.Finish()
	if err != nil {
		t.Fatalf("second forked Finish: %v", err)
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Fatalf("two forks of the same fault future diverged:\n%+v\n%+v", res1, res2)
	}

	base, err := ck.Restore(nil)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	resBase, err := base.Finish()
	if err != nil {
		t.Fatalf("base Finish: %v", err)
	}
	if reflect.DeepEqual(res1, resBase) {
		t.Fatalf("faulted fork is identical to the fault-free continuation: %+v", res1)
	}

	// Fork(nil) on a faulted checkpoint strips the plan again.
	faulted := spec
	faulted.Route.Fault = testFault()
	rf, err := Start(faulted, nil)
	if err != nil {
		t.Fatalf("faulted Start: %v", err)
	}
	if err := rf.StepTo(10); err != nil {
		t.Fatalf("faulted StepTo: %v", err)
	}
	clean, err := rf.Checkpoint().Fork(nil, nil)
	if err != nil {
		t.Fatalf("Fork(nil): %v", err)
	}
	if clean.Spec.Route.Fault != nil {
		t.Fatalf("Fork(nil) kept the fault plan")
	}
	if _, err := clean.Finish(); err != nil {
		t.Fatalf("fault-stripped Finish: %v", err)
	}
}

// TestForkConcurrent forks one checkpoint from many goroutines at once:
// the checkpoint is immutable, so concurrent forks must be race-free
// and identical (run under -race).
func TestForkConcurrent(t *testing.T) {
	spec := testSpecs()[3].Spec // vc-faults-reliable
	r, err := Start(spec, nil)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := r.StepTo(40); err != nil {
		t.Fatalf("StepTo: %v", err)
	}
	ck := r.Checkpoint()
	fault := &wire.FaultSpec{N: 3, LinkRate: 0.08, Seed: 21}

	const workers = 8
	results := make([]*routing.Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			run, err := ck.Fork(fault, nil)
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = run.Finish()
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("worker %d produced a different result:\n%+v\n%+v", i, results[0], results[i])
		}
	}
}

// TestCheckpointRejects covers the validation walls: inconsistent
// checkpoints must fail to marshal or to restore, never silently
// produce a wrong run.
func TestCheckpointRejects(t *testing.T) {
	spec := testSpecs()[4].Spec // full stack
	r, err := Start(spec, nil)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := r.StepTo(50); err != nil {
		t.Fatalf("StepTo: %v", err)
	}

	fresh := func() *Checkpoint { return r.Checkpoint() }

	if _, err := fresh().MarshalBinary(); err != nil {
		t.Fatalf("pristine checkpoint fails to marshal: %v", err)
	}
	if _, err := fresh().Restore(nil); err != nil {
		t.Fatalf("pristine checkpoint fails to restore: %v", err)
	}

	marshalCases := []struct {
		name string
		mut  func(c *Checkpoint)
	}{
		{"reliable state dropped", func(c *Checkpoint) { c.Reliable = nil }},
		{"adaptive state dropped", func(c *Checkpoint) { c.Adaptive = nil }},
		{"derived counter set", func(c *Checkpoint) { c.Sim.Counters.Backlog = 1 }},
		{"negative counter", func(c *Checkpoint) { c.Sim.Counters.Injected = -1 }},
		{"registered off by one", func(c *Checkpoint) { c.Reliable.Registered++ }},
		{"reliable nodes mismatch", func(c *Checkpoint) { c.Reliable.Nodes++ }},
		{"adaptive geometry mismatch", func(c *Checkpoint) { c.Adaptive.N++ }},
		{"adaptive consec truncated", func(c *Checkpoint) { c.Adaptive.Consec = c.Adaptive.Consec[:3] }},
	}
	for _, tc := range marshalCases {
		c := fresh()
		tc.mut(c)
		if _, err := c.MarshalBinary(); err == nil {
			t.Errorf("%s: MarshalBinary accepted a corrupt checkpoint", tc.name)
		}
	}

	restoreCases := []struct {
		name string
		mut  func(c *Checkpoint)
	}{
		{"cycle past end", func(c *Checkpoint) { c.Sim.Cycle = spec.Route.Warmup + spec.Route.Cycles + 1 }},
		{"implausible sim draws", func(c *Checkpoint) { c.Sim.Draws = 1 << 60 }},
		{"implausible transport draws", func(c *Checkpoint) { c.Reliable.Draws = 1 << 60 }},
		{"counter drift breaks conservation", func(c *Checkpoint) { c.Sim.Counters.Delivered++; c.Sim.Counters.TotalDelivered++ }},
		{"pending attempts zeroed", func(c *Checkpoint) {
			if len(c.Reliable.Pending) == 0 {
				c.Sim.Cycle = -1 // fall back to another invalid state
				return
			}
			c.Reliable.Pending[0].Attempts = 0
		}},
	}
	for _, tc := range restoreCases {
		c := fresh()
		tc.mut(c)
		if _, err := c.Restore(nil); err == nil {
			t.Errorf("%s: Restore accepted a corrupt checkpoint", tc.name)
		}
	}
}
