package snapshot

import (
	"bytes"
	"testing"
)

// FuzzSnapshotDecode pins the wire contract on the checkpoint layer's
// two frames: decoding arbitrary bytes never panics, and any input a
// decoder accepts re-encodes byte-identically (the canonical-encoding
// property that makes the SHA-256 of a frame a content address).
func FuzzSnapshotDecode(f *testing.F) {
	for _, tc := range testSpecs() {
		if b, err := tc.Spec.MarshalBinary(); err == nil {
			f.Add(b)
		}
		r, err := Start(tc.Spec, nil)
		if err != nil {
			continue
		}
		if err := r.StepTo(40); err != nil {
			continue
		}
		if b, err := r.Checkpoint().MarshalBinary(); err == nil {
			f.Add(b)
		}
	}
	f.Add([]byte("BF"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var s Spec
		if err := s.UnmarshalBinary(data); err == nil {
			re, err := s.MarshalBinary()
			if err != nil {
				t.Fatalf("decoded spec fails to re-encode: %v", err)
			}
			if !bytes.Equal(re, data) {
				t.Fatalf("spec re-encode not byte-identical:\nin:  %x\nout: %x", data, re)
			}
		}
		var c Checkpoint
		if err := c.UnmarshalBinary(data); err == nil {
			re, err := c.MarshalBinary()
			if err != nil {
				t.Fatalf("decoded checkpoint fails to re-encode: %v", err)
			}
			if !bytes.Equal(re, data) {
				t.Fatalf("checkpoint re-encode not byte-identical:\nin:  %x\nout: %x", data, re)
			}
		}
	})
}
