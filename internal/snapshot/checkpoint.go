package snapshot

import (
	"crypto/sha256"
	"fmt"
	"io"
	"math"

	"bfvlsi/internal/adaptive"
	"bfvlsi/internal/reliable"
	"bfvlsi/internal/routing"
	"bfvlsi/internal/wire"
)

// Checkpoint is a run frozen at a cycle boundary: the static Spec plus
// the dynamic state of the engine and hooks. It serializes as a
// TypeCheckpoint wire frame whose SHA-256 is its content address.
//
// A Checkpoint is immutable once built; Restore and Fork only read it,
// so one checkpoint may be forked from many goroutines concurrently
// (the sweep-farm pattern: one warmed-up prefix, many fault futures).
type Checkpoint struct {
	Spec Spec
	Sim  routing.SimState
	// Reliable and Adaptive are present exactly when the Spec attaches
	// the corresponding hook.
	Reliable *reliable.State
	Adaptive *adaptive.State
}

// geometry returns (rows, nodes) for the checkpoint's dimension.
func (s *Spec) geometry() (int, int) {
	rows := 1 << uint(s.Route.N)
	return rows, s.Route.N * rows
}

// MarshalBinary implements encoding.BinaryMarshaler. Fields derivable
// from the Spec (node counts, state sizes, the payload-conservation
// total) are not encoded, so the frame is canonical by construction;
// Marshal verifies the state is consistent with the Spec instead.
func (c *Checkpoint) MarshalBinary() ([]byte, error) {
	specBytes, err := c.Spec.MarshalBinary()
	if err != nil {
		return nil, err
	}
	_, nodes := c.Spec.geometry()
	e := wire.NewEncoder(wire.TypeCheckpoint, wire.VersionCheckpoint)
	e.Bytes(specBytes)
	if err := c.encodeSim(e); err != nil {
		return nil, err
	}
	if (c.Spec.Reliable != nil) != (c.Reliable != nil) {
		return nil, fmt.Errorf("snapshot: reliable state/spec presence mismatch")
	}
	if c.Reliable != nil {
		if err := encodeReliable(e, c.Reliable, nodes, c.Spec.Reliable.MeasureFrom); err != nil {
			return nil, err
		}
	}
	if (c.Spec.Adaptive != nil) != (c.Adaptive != nil) {
		return nil, fmt.Errorf("snapshot: adaptive state/spec presence mismatch")
	}
	if c.Adaptive != nil {
		if err := encodeAdaptive(e, c.Adaptive, c.Spec.Route.N); err != nil {
			return nil, err
		}
	}
	return e.Encoding(), nil
}

func (c *Checkpoint) encodeSim(e *wire.Encoder) error {
	st := &c.Sim
	if st.Cycle < 0 || st.LatCount < 0 || st.Crossings < 0 {
		return fmt.Errorf("snapshot: sim state has negative totals")
	}
	co := &st.Counters
	if co.Backlog != 0 || co.MaxQueue != 0 || co.Throughput != 0 ||
		co.AvgLatency != 0 || co.AvgHops != 0 || co.BoundaryCrossingsPerCycle != 0 {
		return fmt.Errorf("snapshot: sim counters carry derived summary fields")
	}
	for _, v := range []int{
		co.Nodes, co.Injected, co.Delivered, co.InjectionDrops, co.Stalls,
		co.Dropped, co.Unreachable, co.Misroutes, co.Detours, co.Reroutes,
		co.UnreachableDead, co.UnreachableCut, co.UnreachableDetected,
		co.Retransmitted, co.DuplicatesDropped, co.GaveUp,
		co.TotalInjected, co.TotalDelivered,
	} {
		if v < 0 {
			return fmt.Errorf("snapshot: sim counters are negative")
		}
	}
	e.Uint(st.Cycle)
	e.Uvarint(st.Draws)
	e.Float64(st.LatSum)
	e.Float64(st.HopSum)
	e.Uint(st.LatCount)
	e.Uvarint(uint64(st.Crossings))
	e.Uint(co.Nodes)
	e.Uint(co.Injected)
	e.Uint(co.Delivered)
	e.Uint(co.InjectionDrops)
	e.Uint(co.Stalls)
	e.Uint(co.Dropped)
	e.Uint(co.Unreachable)
	e.Uint(co.Misroutes)
	e.Uint(co.Detours)
	e.Uint(co.Reroutes)
	e.Uint(co.UnreachableDead)
	e.Uint(co.UnreachableCut)
	e.Uint(co.UnreachableDetected)
	e.Uint(co.Retransmitted)
	e.Uint(co.DuplicatesDropped)
	e.Uint(co.GaveUp)
	e.Uint(co.TotalInjected)
	e.Uint(co.TotalDelivered)
	e.Uint(len(st.Packets))
	for i := range st.Packets {
		pk := &st.Packets[i]
		if pk.Queue < 0 || pk.DstRow < 0 || pk.DstCol < 0 || pk.Born < 0 ||
			pk.Hops < 0 || pk.Detours < 0 || pk.VC < 0 {
			return fmt.Errorf("snapshot: packet %d has negative fields", i)
		}
		e.Uint(pk.Queue)
		e.Uint(pk.DstRow)
		e.Uint(pk.DstCol)
		e.Uint(pk.Born)
		e.Uint(pk.Hops)
		e.Uvarint(pk.RID)
		e.Uint(pk.Detours)
		e.Int(pk.Blocked)
		e.Uint(pk.VC)
	}
	return nil
}

func decodeSim(d *wire.Decoder, st *routing.SimState) error {
	st.Cycle = d.Uint()
	st.Draws = d.Uvarint()
	st.LatSum = d.Float64()
	st.HopSum = d.Float64()
	st.LatCount = d.Uint()
	crossings := d.Uvarint()
	if d.Err() == nil && crossings > math.MaxInt64 {
		return fmt.Errorf("snapshot: crossings %d overflows int64", crossings)
	}
	st.Crossings = int64(crossings)
	// A keyed composite literal, not field assignments: the decoder
	// reconstructs counters routing's accounting already produced, and
	// the conscount ownership contract only budges for whole-value
	// construction. The d.* calls evaluate in lexical order, which is
	// the encoding order.
	st.Counters = routing.Result{
		Nodes:               d.Uint(),
		Injected:            d.Uint(),
		Delivered:           d.Uint(),
		InjectionDrops:      d.Uint(),
		Stalls:              d.Uint(),
		Dropped:             d.Uint(),
		Unreachable:         d.Uint(),
		Misroutes:           d.Uint(),
		Detours:             d.Uint(),
		Reroutes:            d.Uint(),
		UnreachableDead:     d.Uint(),
		UnreachableCut:      d.Uint(),
		UnreachableDetected: d.Uint(),
		Retransmitted:       d.Uint(),
		DuplicatesDropped:   d.Uint(),
		GaveUp:              d.Uint(),
		TotalInjected:       d.Uint(),
		TotalDelivered:      d.Uint(),
	}
	n := d.ListLen(9)
	if d.Err() != nil {
		return d.Err()
	}
	st.Packets = make([]routing.PacketState, n)
	for i := range st.Packets {
		st.Packets[i] = routing.PacketState{
			Queue:   d.Uint(),
			DstRow:  d.Uint(),
			DstCol:  d.Uint(),
			Born:    d.Uint(),
			Hops:    d.Uint(),
			RID:     d.Uvarint(),
			Detours: d.Uint(),
			Blocked: d.Int(),
			VC:      d.Uint(),
		}
	}
	return d.Err()
}

func encodeReliable(e *wire.Encoder, st *reliable.State, nodes, measureFrom int) error {
	if st.Nodes != nodes {
		return fmt.Errorf("snapshot: reliable state for %d nodes, spec has %d", st.Nodes, nodes)
	}
	if st.MeasureFrom != measureFrom {
		return fmt.Errorf("snapshot: reliable state MeasureFrom %d, spec has %d", st.MeasureFrom, measureFrom)
	}
	if len(st.NextSeq) != nodes {
		return fmt.Errorf("snapshot: reliable state NextSeq has %d flows, want %d", len(st.NextSeq), nodes)
	}
	var sum uint64
	for _, s := range st.NextSeq {
		e.Uvarint(s)
		sum += s
	}
	if st.Registered < 0 || uint64(st.Registered) != sum {
		return fmt.Errorf("snapshot: reliable state Registered %d != flow sequence sum %d", st.Registered, sum)
	}
	e.Uint(len(st.Pending))
	for i := range st.Pending {
		p := &st.Pending[i]
		if p.Src < 0 || p.Dst < 0 || p.Born < 0 || p.Attempts < 0 {
			return fmt.Errorf("snapshot: reliable pending %d has negative fields", i)
		}
		e.Uvarint(p.ID)
		e.Uint(p.Src)
		e.Uint(p.Dst)
		e.Uint(p.Born)
		e.Uint(p.Attempts)
	}
	e.Uint(len(st.Timers))
	for i := range st.Timers {
		t := &st.Timers[i]
		if t.Fire < 0 {
			return fmt.Errorf("snapshot: reliable timer %d fires at negative cycle", i)
		}
		e.Uint(t.Fire)
		e.Uint(len(t.IDs))
		for _, id := range t.IDs {
			e.Uvarint(id)
		}
	}
	for _, ids := range [][]uint64{st.Ready, st.Accepted, st.Abandoned} {
		e.Uint(len(ids))
		for _, id := range ids {
			e.Uvarint(id)
		}
	}
	e.Uint(len(st.Latencies))
	for _, l := range st.Latencies {
		if l < 0 {
			return fmt.Errorf("snapshot: reliable state has a negative latency sample")
		}
		e.Uint(l)
	}
	e.Uvarint(st.Draws)
	return nil
}

func decodeReliable(d *wire.Decoder, nodes, measureFrom int) (*reliable.State, error) {
	st := &reliable.State{Nodes: nodes, MeasureFrom: measureFrom}
	st.NextSeq = make([]uint64, nodes)
	var sum uint64
	for i := range st.NextSeq {
		st.NextSeq[i] = d.Uvarint()
		sum += st.NextSeq[i]
	}
	if d.Err() == nil && sum > math.MaxInt {
		return nil, fmt.Errorf("snapshot: flow sequence sum %d overflows int", sum)
	}
	st.Registered = int(sum)
	n := d.ListLen(5)
	if d.Err() != nil {
		return nil, d.Err()
	}
	st.Pending = make([]reliable.PendingState, n)
	for i := range st.Pending {
		st.Pending[i] = reliable.PendingState{
			ID:       d.Uvarint(),
			Src:      d.Uint(),
			Dst:      d.Uint(),
			Born:     d.Uint(),
			Attempts: d.Uint(),
		}
	}
	n = d.ListLen(2)
	if d.Err() != nil {
		return nil, d.Err()
	}
	st.Timers = make([]reliable.TimerState, n)
	for i := range st.Timers {
		st.Timers[i].Fire = d.Uint()
		ids, err := decodeIDList(d)
		if err != nil {
			return nil, err
		}
		st.Timers[i].IDs = ids
	}
	var err error
	if st.Ready, err = decodeIDList(d); err != nil {
		return nil, err
	}
	if st.Accepted, err = decodeIDList(d); err != nil {
		return nil, err
	}
	if st.Abandoned, err = decodeIDList(d); err != nil {
		return nil, err
	}
	n = d.ListLen(1)
	if d.Err() != nil {
		return nil, d.Err()
	}
	st.Latencies = make([]int, n)
	for i := range st.Latencies {
		st.Latencies[i] = d.Uint()
	}
	st.Draws = d.Uvarint()
	return st, d.Err()
}

func decodeIDList(d *wire.Decoder) ([]uint64, error) {
	n := d.ListLen(1)
	if d.Err() != nil {
		return nil, d.Err()
	}
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = d.Uvarint()
	}
	return ids, d.Err()
}

func encodeAdaptive(e *wire.Encoder, st *adaptive.State, n int) error {
	rows := 1 << uint(n)
	links := n * rows * 2
	if st.N != n || st.Rows != rows {
		return fmt.Errorf("snapshot: adaptive state geometry %dx%d, spec has n=%d", st.N, st.Rows, n)
	}
	if len(st.Consec) != links || len(st.Open) != links || len(st.MapDead) != links {
		return fmt.Errorf("snapshot: adaptive state sized %d/%d/%d links, want %d",
			len(st.Consec), len(st.Open), len(st.MapDead), links)
	}
	if st.Cycle < 0 || st.Stats.Opened < 0 || st.Stats.Reclosed < 0 ||
		st.Stats.Probes < 0 || st.Stats.ProbesAlive < 0 || st.Stats.Epochs < 0 {
		return fmt.Errorf("snapshot: adaptive state has negative counters")
	}
	e.Uint(st.Cycle)
	for _, c := range st.Consec {
		if c < 0 {
			return fmt.Errorf("snapshot: adaptive state has a negative failure streak")
		}
		e.Uint(c)
	}
	e.Bytes(packBools(st.Open))
	e.Bytes(packBools(st.MapDead))
	e.Bool(st.HaveMap)
	e.Uint(st.Stats.Opened)
	e.Uint(st.Stats.Reclosed)
	e.Uint(st.Stats.Probes)
	e.Uint(st.Stats.ProbesAlive)
	e.Uint(st.Stats.Epochs)
	return nil
}

func decodeAdaptive(d *wire.Decoder, n int) (*adaptive.State, error) {
	rows := 1 << uint(n)
	links := n * rows * 2
	st := &adaptive.State{N: n, Rows: rows}
	st.Cycle = d.Uint()
	st.Consec = make([]int, links)
	for i := range st.Consec {
		st.Consec[i] = d.Uint()
	}
	var err error
	if st.Open, err = unpackBools(d.Bytes(), links); err != nil && d.Err() == nil {
		return nil, err
	}
	if st.MapDead, err = unpackBools(d.Bytes(), links); err != nil && d.Err() == nil {
		return nil, err
	}
	st.HaveMap = d.Bool()
	st.Stats.Opened = d.Uint()
	st.Stats.Reclosed = d.Uint()
	st.Stats.Probes = d.Uint()
	st.Stats.ProbesAlive = d.Uint()
	st.Stats.Epochs = d.Uint()
	return st, d.Err()
}

// packBools packs a bool slice little-endian into (len+7)/8 bytes.
func packBools(bs []bool) []byte {
	out := make([]byte, (len(bs)+7)/8)
	for i, b := range bs {
		if b {
			out[i/8] |= 1 << uint(i%8)
		}
	}
	return out
}

// unpackBools reverses packBools, rejecting wrong lengths and nonzero
// padding bits so the packing stays canonical.
func unpackBools(raw []byte, n int) ([]bool, error) {
	if len(raw) != (n+7)/8 {
		return nil, fmt.Errorf("%w: packed bools are %d bytes, want %d", wire.ErrCanonical, len(raw), (n+7)/8)
	}
	if n%8 != 0 && len(raw) > 0 && raw[len(raw)-1]>>(uint(n%8)) != 0 {
		return nil, fmt.Errorf("%w: nonzero padding bits in packed bools", wire.ErrCanonical)
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = raw[i/8]&(1<<uint(i%8)) != 0
	}
	return out, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The decode is
// structural: canonical form is enforced (so a successful decode
// re-encodes byte-identically), deep semantic validation happens at
// Restore.
func (c *Checkpoint) UnmarshalBinary(data []byte) error {
	d := wire.NewDecoder(data, wire.TypeCheckpoint, wire.VersionCheckpoint)
	var out Checkpoint
	specBytes := d.Bytes()
	if d.Err() == nil {
		if err := out.Spec.UnmarshalBinary(specBytes); err != nil {
			return fmt.Errorf("snapshot: embedded spec: %w", err)
		}
	}
	if err := decodeSim(d, &out.Sim); err != nil {
		return err
	}
	_, nodes := out.Spec.geometry()
	if out.Spec.Reliable != nil {
		st, err := decodeReliable(d, nodes, out.Spec.Reliable.MeasureFrom)
		if err != nil {
			return err
		}
		out.Reliable = st
	}
	if out.Spec.Adaptive != nil {
		st, err := decodeAdaptive(d, out.Spec.Route.N)
		if err != nil {
			return err
		}
		out.Adaptive = st
	}
	if err := d.Finish(); err != nil {
		return err
	}
	*c = out
	return nil
}

// Key returns the checkpoint's content address: the SHA-256 of its
// canonical encoding.
func (c *Checkpoint) Key() ([32]byte, error) {
	b, err := c.MarshalBinary()
	if err != nil {
		return [32]byte{}, err
	}
	return sha256.Sum256(b), nil
}

// maxDraws bounds the RNG fast-forward a restore will perform, so a
// corrupt or hostile draw count cannot stall the process: an honest
// run draws a handful of values per node per cycle at most.
func (s *Spec) maxDraws() uint64 {
	_, nodes := s.geometry()
	total := s.Route.Warmup + s.Route.Cycles
	return 8 * (uint64(total) + 1) * (uint64(nodes) + 1)
}

// Restore rebuilds the checkpointed run, positioned at its cycle
// boundary. The continuation is packet-for-packet identical to the
// uninterrupted run; with trace non-nil it writes the measured-cycle
// lines from here on (no header), so prefix and continuation traces
// concatenate byte-identically to an uninterrupted trace.
func (c *Checkpoint) Restore(trace io.Writer) (*Run, error) {
	return c.restore(c.Spec, trace)
}

// Fork restores the checkpoint under a different fault plan: the
// what-if primitive. The forked run continues from the boundary with
// fault events up to the fork cycle already applied (the plan recipe
// replays deterministically), so a fork models "this fault future hits
// a machine warmed up fault-free" — the sweep-farm pattern. Passing
// nil removes the fault plan. The receiver is not mutated; Fork may be
// called concurrently on one checkpoint.
func (c *Checkpoint) Fork(fault *wire.FaultSpec, trace io.Writer) (*Run, error) {
	spec := c.Spec
	spec.Route.Fault = fault
	return c.restore(spec, trace)
}

func (c *Checkpoint) restore(spec Spec, trace io.Writer) (*Run, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if c.Sim.Draws > spec.maxDraws() {
		return nil, fmt.Errorf("snapshot: sim draw count %d is implausible for this spec (cap %d)", c.Sim.Draws, spec.maxDraws())
	}
	p, transport, router, err := spec.params(trace)
	if err != nil {
		return nil, err
	}
	if (spec.Reliable != nil) != (c.Reliable != nil) {
		return nil, fmt.Errorf("snapshot: reliable state/spec presence mismatch")
	}
	if transport != nil {
		if c.Reliable.Draws > spec.maxDraws() {
			return nil, fmt.Errorf("snapshot: transport draw count %d is implausible for this spec", c.Reliable.Draws)
		}
		if err := transport.RestoreState(c.Reliable); err != nil {
			return nil, err
		}
	}
	if (spec.Adaptive != nil) != (c.Adaptive != nil) {
		return nil, fmt.Errorf("snapshot: adaptive state/spec presence mismatch")
	}
	if router != nil {
		if err := router.RestoreState(c.Adaptive); err != nil {
			return nil, err
		}
	}
	sim, err := routing.RestoreSim(p, spec.Route.Pattern, &c.Sim)
	if err != nil {
		return nil, err
	}
	return &Run{Spec: spec, Sim: sim, Transport: transport, Router: router}, nil
}
