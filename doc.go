// Package bfvlsi is a complete, executable reproduction of
//
//	C.-H. Yeh, B. Parhami, E. A. Varvarigos, H. Lee,
//	"VLSI Layout and Packaging of Butterfly Networks",
//	Proc. 12th ACM Symposium on Parallel Algorithms and
//	Architectures (SPAA), 2000.
//
// The package offers a thin facade over the implementation packages in
// internal/:
//
//   - butterfly networks, hypercubes, swap networks, and indirect swap
//     networks (ISNs), with the paper's ISN -> swap-butterfly
//     transformation and an exact automorphism verifier;
//   - strictly optimal collinear layouts of complete graphs
//     (floor(N^2/4) tracks, Appendix B);
//   - optimal butterfly layouts under the Thompson model (Section 3) and
//     the multilayer 2-D grid model (Section 4), built as real validated
//     geometry with measured area, wire length, and volume;
//   - the swap-link packaging scheme (Section 2.3, Theorem 2.1) with its
//     naive baseline and injection-rate lower bound;
//   - the hierarchical layout model and the Section 5.2 chip/board
//     design engine;
//   - a synchronous packet-routing simulator and an FFT dataflow engine
//     that executes a DFT along ISN stages.
//
// Quick start:
//
//	res, err := bfvlsi.LayoutButterfly(9) // Thompson layout of B_9
//	if err != nil { ... }
//	fmt.Println(res.Stats())              // measured area, max wire, ...
//
// The cmd/bftables binary regenerates every experiment table of
// EXPERIMENTS.md; examples/ holds runnable scenario programs.
package bfvlsi
