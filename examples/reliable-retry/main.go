// reliable-retry: the end-to-end reliability layer in action. A wrapped
// B_6 takes rolling link outages (transient faults with repair) while an
// ARQ transport - per-flow sequence numbers, timeout/backoff
// retransmission, duplicate suppression - recovers the payloads the
// naive drop policy loses. The example shows the copy-conservation
// identity on a single run, then sweeps outage severity to compare all
// four recovery modes, and finally prices recovery under permanent
// module kills across the paper's packagings.
package main

import (
	"fmt"
	"log"

	"bfvlsi/internal/faults"
	"bfvlsi/internal/reliable"
	"bfvlsi/internal/routing"
)

func main() {
	const n = 6
	base := routing.Params{
		N: n, Lambda: 0.1, Warmup: 200, Cycles: 800, Seed: 11,
		Policy: routing.DropDead,
	}

	// One run under rolling outages, transport attached.
	plan := faults.MustPlan(n)
	horizon := base.Warmup + base.Cycles
	if err := plan.AddRandomTransientLinkFaults(400, horizon, 60, 13); err != nil {
		log.Fatal(err)
	}
	tr := reliable.MustNew(reliable.Config{Timeout: 30, MaxRetries: 4, Jitter: 5, Seed: 3})
	tr.MeasureFrom = base.Warmup
	p := base
	p.Faults = plan
	p.TTL = faults.DefaultTTL(n)
	p.Reliable = tr
	r, err := routing.Simulate(p)
	if err != nil {
		log.Fatal(err)
	}
	if err := r.CheckConservation(); err != nil {
		log.Fatal(err)
	}
	s := tr.Stats()
	fmt.Printf("B_%d under rolling outages, ARQ transport attached:\n", n)
	fmt.Printf("  copies:   %d injected + %d retransmitted = %d delivered + %d duplicates + %d dropped + %d gave up + %d backlog\n",
		r.TotalInjected, r.Retransmitted, r.TotalDelivered, r.DuplicatesDropped,
		r.Dropped, r.GaveUp, r.Backlog+r.Unreachable)
	fmt.Printf("  payloads: %d registered = %d accepted + %d abandoned + %d pending\n",
		s.Registered, s.Accepted, s.Abandoned, s.Pending)
	fmt.Printf("  delivery: goodput %.4f pkts/node/cycle, p99 latency %.0f cycles\n\n",
		r.Throughput, tr.LatencyPercentile(0.99))

	// Graceful degradation: all four recovery modes vs outage severity.
	cfg := reliable.Config{Timeout: 30, MaxRetries: 4, Jitter: 5, Seed: 3}
	rates := []float64{0, 0.05, 0.1, 0.2}
	fmt.Printf("goodput vs fraction of links in outage (60-cycle repairs):\n")
	fmt.Printf("  %-14s", "mode")
	for _, rate := range rates {
		fmt.Printf("  %6.0f%%", 100*rate)
	}
	fmt.Println()
	pts := reliable.OutageSweep(base, cfg, reliable.StandardModes(), rates, 60)
	for mi, m := range reliable.StandardModes() {
		fmt.Printf("  %-14s", m.Name)
		for ri := range rates {
			pt := pts[mi*len(rates)+ri]
			if pt.Err != nil {
				log.Fatal(pt.Err)
			}
			fmt.Printf("  %6.4f", pt.Goodput)
		}
		fmt.Println()
	}

	// Packaging comparison with recovery in the loop: the nucleus modules
	// are small failure domains, so the same kill count hurts less.
	schemes, err := faults.StandardSchemes(n)
	if err != nil {
		log.Fatal(err)
	}
	modes := []reliable.Mode{{Name: "misroute+retx", Policy: routing.Misroute, Retransmit: true}}
	kills := []int{0, 1, 2, 4}
	fmt.Printf("\nmisroute+retx goodput vs modules killed, by packaging scheme:\n")
	fmt.Printf("  %-10s", "scheme")
	for _, k := range kills {
		fmt.Printf("  %6d", k)
	}
	fmt.Println()
	kp := reliable.ModuleKillSweep(base, cfg, modes, schemes, kills)
	for si, sc := range schemes {
		fmt.Printf("  %-10s", sc.Name)
		for ki := range kills {
			pt := kp[si*len(kills)+ki]
			if pt.Err != nil {
				log.Fatal(pt.Err)
			}
			fmt.Printf("  %6.4f", pt.Goodput)
		}
		fmt.Println()
	}
}
