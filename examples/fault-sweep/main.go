// Quickstart for the fault-injection subsystem: degrade a wrapped B_6
// under growing link fault rates, then compare the paper's packagings as
// failure domains by killing whole modules.
//
//	go run ./examples/fault-sweep
package main

import (
	"fmt"
	"log"

	"bfvlsi"
)

func main() {
	base := bfvlsi.RoutingParams{
		N: 6, Lambda: 0.1, Warmup: 200, Cycles: 600, Seed: 1,
	}

	// Random permanent link faults, misrouted around with a TTL.
	fmt.Println("link fault rate sweep (throughput = pkts/node/cycle):")
	for _, pt := range bfvlsi.FaultSweep(base, []float64{0, 0.01, 0.02, 0.05, 0.1}) {
		if pt.Err != nil {
			log.Fatal(pt.Err)
		}
		fmt.Printf("  rate %-5g dead links %-3d throughput %.4f  dropped %d\n",
			pt.Rate, pt.DeadLinks, pt.Result.Throughput, pt.Result.Dropped)
	}

	// Whole-module failures: the nucleus packaging (Theorem 2.1) has
	// smaller failure domains than row packaging, so the same number of
	// dead modules costs less of the machine.
	schemes, err := bfvlsi.StandardFaultSchemes(base.N)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmodule-kill comparison:")
	for _, pt := range bfvlsi.ModuleKillSweep(base, schemes, []int{0, 1, 2, 4}) {
		if pt.Err != nil {
			log.Fatal(pt.Err)
		}
		fmt.Printf("  %-8s killed %d  dead nodes %-3d (%.1f%%)  throughput %.4f\n",
			pt.Scheme, pt.Killed, pt.DeadNodes, 100*pt.DeadNodeFrac, pt.Result.Throughput)
	}
}
