// Quickstart: build the paper's optimal Thompson-model layout of a
// butterfly network, verify all the model rules hold, and compare the
// measured metrics against the paper's bounds - the shortest path through
// the public API.
package main

import (
	"fmt"
	"log"

	"bfvlsi"
)

func main() {
	const n = 6 // B_6: 64 rows, 7 stages, 448 nodes

	// 1. The paper's construction starts from an indirect swap network.
	spec := bfvlsi.SpecForDim(n)
	fmt.Printf("group spec for B_%d: %v\n", n, spec)

	// 2. Transform it into a swap-butterfly and check - exactly - that it
	// is an automorphism of the butterfly network (Section 2.2).
	sb := bfvlsi.Transform(spec)
	if err := sb.VerifyAutomorphism(); err != nil {
		log.Fatalf("transformation broken: %v", err)
	}
	fmt.Printf("swap-butterfly verified as an automorphism of B_%d\n", n)

	// 3. Build the layout: every wire is placed, every rule is checked.
	res, err := bfvlsi.LayoutButterfly(n)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		log.Fatalf("layout violates the Thompson rules: %v", err)
	}
	st := res.Stats()
	fmt.Printf("layout: %d x %d, area %d, max wire %d, %d wires, %d vias\n",
		st.Width, st.Height, st.Area, st.MaxWireLength, st.Wires, st.Vias)
	fmt.Printf("paper bound: area N^2/log2^2 N = %.0f (leading term 2^2n = %d)\n",
		bfvlsi.PaperThompsonArea(n), 1<<(2*n))

	// 4. Packaging: only swap links leave the modules.
	part := bfvlsi.PackageRows(sb)
	ps := part.Stats()
	fmt.Printf("packaging: %d modules, %.3f off-module links per node (naive pays ~2)\n",
		ps.NumModules, ps.AvgOffLinksPerNode)
}
