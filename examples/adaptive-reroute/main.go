// adaptive-reroute: the fault-aware adaptive router in action. A wrapped
// B_6 loses two whole nucleus modules permanently; the router learns the
// dead links through circuit breakers, steers packets around the hole
// with bounded dimension-shift detours, and uses epoch link-state maps
// to refuse traffic for destinations the wreckage cut off. The example
// shows one instrumented run with the full learning trace, then the E23
// recovery ladder (drop / misroute / adaptive / adaptive+retx) across
// packagings - the regime where deterministic retries plateau (PR 2) but
// rerouting recovers.
package main

import (
	"fmt"
	"log"

	"bfvlsi/internal/adaptive"
	"bfvlsi/internal/faults"
	"bfvlsi/internal/reliable"
	"bfvlsi/internal/routing"
)

func main() {
	const n = 6
	base := routing.Params{
		N: n, Lambda: 0.06, Warmup: 200, Cycles: 800, Seed: 42,
	}

	// One adaptive run on module wreckage, learning trace printed.
	schemes, err := faults.StandardSchemes(n)
	if err != nil {
		log.Fatal(err)
	}
	nucleus := schemes[1]
	plan := faults.MustPlan(n)
	dead := 0
	for _, m := range faults.PickModules(nucleus.NumModules, 2, 7) {
		killed, err := plan.AddModuleFault(nucleus.ModuleOf, m, 0, 0)
		if err != nil {
			log.Fatal(err)
		}
		dead += killed
	}
	rt, err := adaptive.New(adaptive.DefaultConfig(n))
	if err != nil {
		log.Fatal(err)
	}
	p := base
	p.Faults = plan
	p.TTL = faults.DefaultTTL(n)
	p.Adaptive = rt
	r, err := routing.Simulate(p)
	if err != nil {
		log.Fatal(err)
	}
	if err := r.CheckConservation(); err != nil {
		log.Fatal(err)
	}
	s := rt.Stats()
	fmt.Printf("B_%d with 2 nucleus modules dead (%d nodes), adaptive router:\n", n, dead)
	fmt.Printf("  learned:  %d breakers opened, %d probes sent, %d epochs disseminated\n",
		s.Opened, s.Probes, s.Epochs)
	fmt.Printf("  rerouted: %d detours in flight, %d queued heads re-planned\n",
		r.Detours, r.Reroutes)
	fmt.Printf("  refused:  %d dead dest + %d cut dest + %d detected by epoch map\n",
		r.UnreachableDead, r.UnreachableCut, r.UnreachableDetected)
	fmt.Printf("  copies:   %d injected = %d delivered + %d dropped + %d unreachable + %d backlog\n",
		r.TotalInjected, r.TotalDelivered, r.Dropped, r.Unreachable, r.Backlog)
	fmt.Printf("  goodput:  %.4f pkts/node/cycle\n\n", r.Throughput)

	// E23: the recovery ladder on the same wreckage, per packaging scheme.
	// Deterministic retries retrace the same dead path, so misroute+retx
	// plateaus; the adaptive detours change the physical route each
	// wrap-around pass and recover goodput the static policies cannot.
	cfg := adaptive.DefaultConfig(n)
	rcfg := reliable.Config{Timeout: 8 * n, MaxRetries: 1, MaxTimeout: 32 * n, Seed: 9}
	modes := adaptive.StandardModes()
	kills := []int{0, 2, 4}
	pts := adaptive.ModuleKillSweep(base, cfg, rcfg, modes, schemes, kills)
	for si, sc := range schemes {
		fmt.Printf("%s scheme, goodput vs modules killed:\n", sc.Name)
		fmt.Printf("  %-14s", "mode")
		for _, k := range kills {
			fmt.Printf("  %6d", k)
		}
		fmt.Println()
		for mi, m := range modes {
			fmt.Printf("  %-14s", m.Name)
			for ki := range kills {
				pt := pts[mi*len(schemes)*len(kills)+si*len(kills)+ki]
				if pt.Err != nil {
					log.Fatal(pt.Err)
				}
				fmt.Printf("  %6.4f", pt.Goodput)
			}
			fmt.Println()
		}
		fmt.Println()
	}
}
