// gallery: regenerate the paper's figures (and this repository's
// extension figures) as SVG files from the live constructions. Run with
// an output directory:
//
//	go run ./examples/gallery -out /tmp/gallery
//
// Produces:
//
//	fig3-butterfly-thompson.svg   the recursive grid layout (Fig. 3 view)
//	fig4-collinear-k9.svg         the collinear K_9 layout (Fig. 4)
//	multilayer-L4-layer1.svg      one layer of a 4-layer layout
//	hypercube-q6.svg              extension: Q_6 grid layout
//	torus-8ary.svg                extension: 8-ary 2-cube
//	bitonic-16.svg                extension: 16-wire Batcher sorter
//	benes-8.svg                   extension: 8-port Benes fabric
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"bfvlsi"
	"bfvlsi/internal/benes"
	"bfvlsi/internal/bitonic"
	"bfvlsi/internal/collinear"
	"bfvlsi/internal/cubelayout"
	"bfvlsi/internal/grid"
	"bfvlsi/internal/render"
)

var out = flag.String("out", "gallery-out", "output directory")

func main() {
	flag.Parse()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	// Figure 3: the blocked butterfly layout.
	bf, err := bfvlsi.LayoutButterfly(6)
	must(err)
	write("fig3-butterfly-thompson.svg", bf.L, render.Options{})

	// Figure 4: collinear K_9.
	ta, err := collinear.Optimal(9)
	must(err)
	ta.ReorderByDescendingSpan()
	k9, err := collinear.ToLayout(ta, collinear.LayoutOptions{})
	must(err)
	write("fig4-collinear-k9.svg", k9, render.Options{Scale: 4, Labels: true})

	// One layer of a multilayer layout: the partitioned band structure.
	ml, err := bfvlsi.LayoutMultilayer(6, 4)
	must(err)
	write("multilayer-L4-all.svg", ml.L, render.Options{})
	write("multilayer-L4-layer1.svg", ml.L, render.Options{OnlyLayer: 1})

	// Extensions.
	q6, err := cubelayout.Hypercube(6)
	must(err)
	write("hypercube-q6.svg", q6.L, render.Options{})

	tor, err := cubelayout.Torus(8)
	must(err)
	write("torus-8ary.svg", tor.L, render.Options{Scale: 4})

	sorter, err := bitonic.New(4).Layout()
	must(err)
	write("bitonic-16.svg", sorter, render.Options{Scale: 3})

	bn, err := benes.New(3).Layout()
	must(err)
	write("benes-8.svg", bn, render.Options{Scale: 4})

	fmt.Println("gallery written to", *out)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func write(name string, l *grid.Layout, opts render.Options) {
	path := filepath.Join(*out, name)
	f, err := os.Create(path)
	must(err)
	must(render.SVG(f, l, opts))
	must(f.Close())
	st, _ := os.Stat(path)
	fmt.Printf("  %-32s %7d bytes\n", name, st.Size())
}
