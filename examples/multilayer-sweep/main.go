// multilayer-sweep: a design-space exploration over the number of wiring
// layers (Section 4). For a fixed butterfly it builds the L-layer layout
// for every L, prints area / wire length / volume / vias, and locates the
// knee where extra layers stop paying because the block floor dominates -
// the same diminishing-returns effect the paper observes in Section 5.2.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"bfvlsi"
	"bfvlsi/internal/analysis"
)

func main() {
	const n = 6
	spec := bfvlsi.SpecForDim(n)
	fmt.Printf("multilayer sweep for B_%d (spec %v)\n\n", n, spec)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "L\tarea\tsaving vs L=2\tmax wire\tvolume\tThm4.1 area\n")
	var base int64
	prev := int64(0)
	knee := 0
	for _, L := range []int{2, 3, 4, 5, 6, 8, 10, 12, 16} {
		res, err := bfvlsi.LayoutMultilayer(n, L)
		if err != nil {
			log.Fatal(err)
		}
		if err := res.Validate(); err != nil {
			log.Fatalf("L=%d: %v", L, err)
		}
		st := res.Stats()
		if L == 2 {
			base = st.Area
		}
		saving := float64(base-st.Area) / float64(base) * 100
		fmt.Fprintf(w, "%d\t%d\t%.1f%%\t%d\t%d\t%.0f\n",
			L, st.Area, saving, st.MaxWireLength, st.Volume,
			bfvlsi.PaperMultilayerArea(n, L))
		if prev > 0 && knee == 0 {
			// Knee: less than 5% further saving from the previous step.
			if float64(prev-st.Area)/float64(prev) < 0.05 {
				knee = L
			}
		}
		prev = st.Area
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if knee > 0 {
		fmt.Printf("\nknee at L=%d: beyond it the (layer-independent) blocks dominate -\n", knee)
		fmt.Printf("the paper's Section 5.2 observation that 'the saving in total area\n")
		fmt.Printf("diminishes in relative importance when L becomes larger'.\n")
	}
	fmt.Printf("\nanalytic trend for large n: area ~ 4N^2/(L^2 log2^2 N); at n=%d the\n", n)
	fmt.Printf("wiring term is %.0f at L=2 vs %.0f at L=8 (a 16x drop the floor hides).\n",
		analysis.MultilayerArea(n, 2), analysis.MultilayerArea(n, 8))
}
