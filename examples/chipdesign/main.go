// chipdesign: the Section 5.2 design study as a reusable workflow. Given
// a butterfly dimension and per-chip pin budget, find the partition,
// size the board for several wiring layer counts, and compare against the
// naive baseline - then repeat the study across pin budgets to show how
// packaging constraints drive the architecture.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"bfvlsi"
	"bfvlsi/internal/hierarchy"
	"bfvlsi/internal/routing"
)

func main() {
	// The paper's exact scenario.
	d, err := bfvlsi.DesignBoard(9, 64, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Section 5.2 scenario: B_9, 64-pin chips, side 20\n")
	fmt.Printf("  partition %v: %d chips x %d nodes, %d off-chip links\n",
		d.Spec, d.NumChips, d.NodesPerChip, d.OffChipLinks)
	for _, L := range []int{2, 4, 8} {
		fmt.Printf("  board with %d layers: area %d\n", L, d.BoardArea(L))
	}
	nr, nc := hierarchy.NaiveChipsPaperEstimate(9, 64)
	fmt.Printf("  naive baseline: %d rows/chip -> %d chips (vs %d)\n\n", nr, nc, d.NumChips)

	// Sweep pin budgets: how the best feasible design shifts.
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "pins\tspec\tchips\tnodes/chip\toff-chip\tboard area (L=4)\n")
	for _, pins := range []int{56, 64, 96, 128, 256} {
		dd, err := bfvlsi.DesignBoard(9, pins, 20)
		if err != nil {
			fmt.Fprintf(w, "%d\t(infeasible for l<=3)\t\t\t\t\n", pins)
			continue
		}
		fmt.Fprintf(w, "%d\t%v\t%d\t%d\t%d\t%d\n",
			pins, dd.Spec, dd.NumChips, dd.NodesPerChip, dd.OffChipLinks, dd.BoardArea(4))
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	// Sanity-check the pin budget against actual traffic: simulate the
	// network near saturation and compare per-chip crossing demand with
	// the provisioned off-chip links.
	n := 6 // simulate a smaller sibling for speed
	rows := 1 << uint(n)
	moduleOf := make([]int, n*rows)
	for col := 0; col < n; col++ {
		for row := 0; row < rows; row++ {
			moduleOf[col*rows+row] = row / 8
		}
	}
	res, err := bfvlsi.SimulateRouting(routing.Params{
		N: n, Lambda: routing.TheoreticalSaturation(n) * 0.8,
		Warmup: 300, Cycles: 1000, Seed: 5, ModuleOf: moduleOf,
	})
	if err != nil {
		log.Fatal(err)
	}
	perChip := res.BoundaryCrossingsPerCycle / float64(rows/8)
	fmt.Printf("\ntraffic check (B_%d, 8-row modules, 0.8x saturation): %.1f crossings/chip/cycle\n",
		n, perChip)
	fmt.Println("each crossing needs one off-chip link-cycle: the pin budget must cover it,")
	fmt.Println("which is the Omega(M/log R) lower bound of Theorem 2.1 in action.")
}
