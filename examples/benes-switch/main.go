// benes-switch: the circuit-switched router scenario from the paper's
// introduction ("many network switches/routers are based on butterfly,
// Benes, or related interconnection topologies"). A 64-port Benes switch
// is configured for a sequence of connection patterns with the looping
// algorithm; every pattern is verified by walking packets through the
// configured switches, and the fabric's silicon budget is estimated with
// the paper's butterfly layout results.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bfvlsi/internal/analysis"
	"bfvlsi/internal/benes"
)

func main() {
	const n = 6 // 64 ports
	sw := benes.New(n)
	fmt.Printf("Benes switch: %d ports, %d switch columns, %d crosspoints\n",
		sw.T, sw.NumStages, sw.NumStages*sw.T/2)

	rng := rand.New(rand.NewSource(7))

	// Scenario 1: a shuffle (perfect-shuffle permutation), common in
	// multicast/sort fabrics.
	shuffle := make([]int, sw.T)
	for i := range shuffle {
		shuffle[i] = ((i << 1) | (i >> (n - 1))) & (sw.T - 1)
	}
	mustRoute(sw, shuffle, "perfect shuffle")

	// Scenario 2: bit reversal (FFT I/O reordering).
	rev := make([]int, sw.T)
	for i := range rev {
		r := 0
		for b := 0; b < n; b++ {
			if i&(1<<uint(b)) != 0 {
				r |= 1 << uint(n-1-b)
			}
		}
		rev[i] = r
	}
	mustRoute(sw, rev, "bit reversal")

	// Scenario 3: a burst of random reconfigurations (virtual circuit
	// arrivals/departures modeled as fresh permutations).
	for k := 0; k < 1000; k++ {
		perm := rng.Perm(sw.T)
		sw.Reset()
		if err := sw.Route(perm); err != nil {
			log.Fatalf("reconfiguration %d failed: %v", k, err)
		}
		if err := sw.Verify(perm); err != nil {
			log.Fatalf("reconfiguration %d misrouted: %v", k, err)
		}
	}
	fmt.Println("1000 random reconfigurations routed and verified (rearrangeable, as claimed)")

	// Silicon budget: a Benes fabric is two mirrored butterflies, so the
	// paper's layout results price it directly.
	fmt.Printf("\nlayout budget (Thompson model, unit wire pitch):\n")
	fmt.Printf("  single butterfly B_%d: ~%.0f area units\n", n, analysis.LeadingAreaExact(n))
	fmt.Printf("  Benes fabric:         ~%.0f area units (2x)\n", benes.LayoutAreaEstimate(n))
	for _, L := range []int{4, 8} {
		fmt.Printf("  with %d wiring layers: ~%.0f (Theorem 4.1 scaling x2)\n",
			L, 2*analysis.MultilayerArea(n, L)*analysis.LeadingAreaExact(n)/analysis.ThompsonArea(n))
	}
}

func mustRoute(sw *benes.Benes, perm []int, name string) {
	sw.Reset()
	if err := sw.Route(perm); err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	if err := sw.Verify(perm); err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	crossed := 0
	for _, col := range sw.Settings {
		for _, s := range col {
			if s {
				crossed++
			}
		}
	}
	fmt.Printf("  routed %-16s (%d/%d switches crossed)\n", name, crossed, sw.NumStages*sw.T/2)
}
