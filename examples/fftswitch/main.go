// fftswitch: the network-switch / signal-processing workload the paper's
// introduction motivates. A 64-point FFT is executed along the stages of
// three different indirect swap networks - the data physically moves only
// over ISN links - and each spectrum is checked against a direct DFT.
// The example then filters a noisy signal in the frequency domain and
// reconstructs it with the inverse transform on the same fabric.
package main

import (
	"fmt"
	"log"
	"math"
	"math/cmplx"
	"math/rand"

	"bfvlsi"
	"bfvlsi/internal/fftsim"
	"bfvlsi/internal/isn"
)

func main() {
	rng := rand.New(rand.NewSource(2026))

	// A clean two-tone signal plus noise, 64 samples.
	const bins = 64
	x := make([]complex128, bins)
	for i := range x {
		ti := float64(i) / bins
		clean := math.Sin(2*math.Pi*5*ti) + 0.5*math.Sin(2*math.Pi*12*ti)
		x[i] = complex(clean+0.4*(rng.Float64()*2-1), 0)
	}

	// Three fabrics that all realize B_6 after transformation: the plain
	// butterfly (one cluster), a two-level ISN, and a three-level ISN
	// (more packaging-friendly, one extra forwarding step per level).
	for _, widths := range [][]int{{6}, {3, 3}, {2, 2, 2}} {
		spec, err := bfvlsi.NewGroupSpec(widths...)
		if err != nil {
			log.Fatal(err)
		}
		in := bfvlsi.NewISN(spec)
		res, err := bfvlsi.FFTOnISN(in, x)
		if err != nil {
			log.Fatal(err)
		}
		errMax := fftsim.MaxError(res.Output, fftsim.DFT(x))
		fmt.Printf("ISN%v: %2d comm steps (%d forwarding), max error vs DFT %.2e\n",
			spec, res.CommSteps, res.SwapSteps, errMax)
	}

	// Frequency-domain filtering on the (2,2,2) fabric: keep only the
	// two strongest positive-frequency bins (and their mirrors).
	spec, _ := bfvlsi.NewGroupSpec(2, 2, 2)
	in := bfvlsi.NewISN(spec)
	fwd, err := bfvlsi.FFTOnISN(in, x)
	if err != nil {
		log.Fatal(err)
	}
	spectrum := fwd.Output
	type bin struct {
		k   int
		mag float64
	}
	best := []bin{{0, 0}, {0, 0}}
	for k := 1; k < bins/2; k++ {
		m := cmplx.Abs(spectrum[k])
		if m > best[0].mag {
			best[1] = best[0]
			best[0] = bin{k, m}
		} else if m > best[1].mag {
			best[1] = bin{k, m}
		}
	}
	fmt.Printf("dominant bins: %d and %d (expected 5 and 12)\n", best[0].k, best[1].k)

	filtered := make([]complex128, bins)
	for _, b := range best {
		filtered[b.k] = spectrum[b.k]
		filtered[bins-b.k] = spectrum[bins-b.k]
	}
	y, err := fftsim.Inverse(isn.New(spec), filtered)
	if err != nil {
		log.Fatal(err)
	}

	// Residual against the clean signal must be far below the noise.
	var noisePow, residPow float64
	for i := range x {
		ti := float64(i) / bins
		clean := math.Sin(2*math.Pi*5*ti) + 0.5*math.Sin(2*math.Pi*12*ti)
		noisePow += (real(x[i]) - clean) * (real(x[i]) - clean)
		residPow += (real(y[i]) - clean) * (real(y[i]) - clean)
	}
	fmt.Printf("denoising on the ISN fabric: noise power %.3f -> residual %.3f\n",
		noisePow/bins, residPow/bins)
	if residPow >= noisePow {
		log.Fatal("filter failed to reduce noise")
	}
	fmt.Println("OK: the ISN dataflow computes, filters, and inverts the transform.")
}
