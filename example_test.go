package bfvlsi_test

import (
	"fmt"

	"bfvlsi"
)

// Build the paper's optimal Thompson-model layout of a small butterfly
// and inspect its measured structure.
func ExampleLayoutButterfly() {
	res, err := bfvlsi.LayoutButterfly(6)
	if err != nil {
		panic(err)
	}
	if err := res.Validate(); err != nil {
		panic(err)
	}
	fmt.Printf("spec %v, blocks %dx%d, band tracks %d\n",
		res.Spec, res.GridRows, res.GridCols, res.BandH)
	fmt.Printf("wires %d, nodes %d\n", len(res.L.Wires), len(res.L.Nodes))
	// Output:
	// spec (2,2,2), blocks 4x4, band tracks 16
	// wires 768, nodes 448
}

// Transform an indirect swap network into a butterfly and verify the
// automorphism exactly (Section 2.2).
func ExampleTransform() {
	spec, _ := bfvlsi.NewGroupSpec(1, 1)
	sb := bfvlsi.Transform(spec)
	fmt.Println("rows:", sb.Rows, "stages:", sb.Stages)
	fmt.Println("verified:", sb.VerifyAutomorphism() == nil)
	fmt.Println("row label of (1,2):", sb.RowLabel[sb.ID(1, 2)])
	// Output:
	// rows: 4 stages: 3
	// verified: true
	// row label of (1,2): 2
}

// The strictly optimal collinear layout of K_9 from Figure 4.
func ExampleCollinearKN() {
	ta, err := bfvlsi.CollinearKN(9)
	if err != nil {
		panic(err)
	}
	fmt.Println("tracks:", ta.NumTracks)
	fmt.Println("matches floor(N^2/4):", ta.NumTracks == 81/4)
	// Output:
	// tracks: 20
	// matches floor(N^2/4): true
}

// The Section 5.2 worked example: a 9-dimensional butterfly on 64-pin
// chips.
func ExampleDesignBoard() {
	d, err := bfvlsi.DesignBoard(9, 64, 20)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d chips x %d nodes, %d off-chip links\n",
		d.NumChips, d.NodesPerChip, d.OffChipLinks)
	fmt.Println("board area L=2:", d.BoardArea(2))
	fmt.Println("board area L=8:", d.BoardArea(8))
	// Output:
	// 64 chips x 80 nodes, 56 off-chip links
	// board area L=2: 409600
	// board area L=8: 78400
}

// Packaging: only swap links leave the modules.
func ExamplePackageRows() {
	spec, _ := bfvlsi.NewGroupSpec(3, 3, 3)
	sb := bfvlsi.Transform(spec)
	st := bfvlsi.PackageRows(sb).Stats()
	fmt.Printf("modules: %d, avg off-module links per node: %.2f\n",
		st.NumModules, st.AvgOffLinksPerNode)
	// Output:
	// modules: 64, avg off-module links per node: 0.70
}

// A Benes switch routes any permutation (looping algorithm).
func ExampleNewBenes() {
	sw := bfvlsi.NewBenes(3)
	perm := []int{3, 1, 4, 1 + 4, 7, 0, 2, 6}
	perm[3] = 5
	if err := sw.Route(perm); err != nil {
		panic(err)
	}
	fmt.Println("input 0 exits at:", sw.Evaluate(0))
	fmt.Println("verified:", sw.Verify(perm) == nil)
	// Output:
	// input 0 exits at: 3
	// verified: true
}

// An FFT executed along the stages of an ISN (the dataflow fact behind
// the swap-butterfly transformation).
func ExampleFFTOnISN() {
	spec, _ := bfvlsi.NewGroupSpec(2, 2)
	in := bfvlsi.NewISN(spec)
	x := make([]complex128, in.Rows)
	for i := range x {
		x[i] = 1 // constant signal
	}
	res, err := bfvlsi.FFTOnISN(in, x)
	if err != nil {
		panic(err)
	}
	fmt.Println("comm steps:", res.CommSteps, "(n + l - 1 =", in.Spec.TotalBits()+in.Spec.Levels()-1, ")")
	fmt.Println("X[0]:", real(res.Output[0]))
	// Output:
	// comm steps: 5 (n + l - 1 = 5 )
	// X[0]: 16
}
