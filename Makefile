GO ?= go

.PHONY: all build test test-short race bench bench-alloc bench-json vet lint lint-concurrency lint-schema fmt tables cover fault-sweep reliable-sweep adaptive-sweep fuzz serve sweep-resume chaos-sweep

all: build vet lint lint-schema test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# bflint is the repo's own analyzer suite (determinism, conservation,
# facade, flush/close contracts). It runs standalone here; CI also
# exercises the `go vet -vettool` path.
lint:
	$(GO) build -o bin/bflint ./cmd/bflint
	bin/bflint ./...

# The v3 concurrency gate: the interprocedural contract analyzers
# (lockcheck, atomicmix, goleak, sweepshare) over the whole module,
# alongside the race detector on the packages those contracts police.
# The analyzers prove the //bflint:guardedby and atomic disciplines on
# every CFG path; the race detector catches whatever slips outside the
# annotations' reach.
lint-concurrency:
	$(GO) build -o bin/bflint ./cmd/bflint
	bin/bflint ./internal/dispatch ./internal/serve ./internal/sweepfarm ./cmd/bffarm
	$(GO) test -race -count=1 ./internal/dispatch/... ./internal/serve/...

# The v4 serialization gate: the schema-drift analyzers (wirecover,
# statecover, schemalock) over the wire/snapshot/state packages, plus a
# byte-compare of a freshly regenerated manifest against the committed
# internal/wire/schema.lock — manifest drift fails even if no analyzer
# fires.
lint-schema:
	$(GO) build -o bin/bflint ./cmd/bflint
	bin/bflint ./internal/wire ./internal/snapshot ./internal/routing ./internal/reliable ./internal/adaptive
	bin/bflint -writeschema -o bin/schema.lock.generated
	cmp internal/wire/schema.lock bin/schema.lock.generated

fmt:
	gofmt -l .

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench . -benchmem ./...

# The simulator hot-loop budget (EXPERIMENTS.md E24): ns/cycle from the
# benchmark, and the steady-state zero-allocation guard that backs the
# hotalloc analyzer.
bench-alloc:
	$(GO) test -run '^$$' -bench BenchmarkStepAllocs -benchtime 3x ./internal/routing
	$(GO) test -run TestStepAllocsZero -count=1 ./internal/routing

# Machine-readable hot-loop snapshot (ns/cycle, allocs/cycle per
# simulator); committed so perf regressions show up as a diff.
bench-json:
	$(GO) run ./cmd/bfbench -o BENCH_routing.json

# The layout-and-routing query daemon (see README "bfserve").
serve:
	$(GO) run ./cmd/bfserve

# Distributed sweep-farm chaos smoke (EXPERIMENTS.md E26): the dispatch
# coordinator against three in-process bfserve workers behind a mixed
# chaos proxy (drops, delays, 500s, truncated and duplicated bodies),
# with hedging and per-worker journals, under the race detector. The
# test asserts the merged report is byte-identical to a serial farm.
chaos-sweep:
	$(GO) test -race -count=1 -run TestChaosSweepSmoke -v ./internal/dispatch

# Resumable sweep-farm smoke: run a small farm twice over one journal;
# the second invocation must replay every point from disk (header says
# "N from journal") and print the identical table.
sweep-resume:
	rm -f /tmp/bfsweep-smoke.journal
	$(GO) run ./cmd/bfsweep -n 4 -lambda 0.2 -warmup 30 -cycles 90 \
		-rates 0.02,0.05 -faultseeds 1,2 -journal /tmp/bfsweep-smoke.journal
	$(GO) run ./cmd/bfsweep -n 4 -lambda 0.2 -warmup 30 -cycles 90 \
		-rates 0.02,0.05 -faultseeds 1,2 -journal /tmp/bfsweep-smoke.journal

tables:
	$(GO) run ./cmd/bftables

cover:
	$(GO) test -cover ./...

fault-sweep:
	$(GO) run ./cmd/bffault -n 6 -lambda 0.1 -sweep 0,0.01,0.02,0.05,0.1
	$(GO) run ./cmd/bffault -n 6 -lambda 0.1 -compare -kills 0,1,2,4

reliable-sweep:
	$(GO) run ./cmd/bffault -n 6 -lambda 0.1 -reliable -sweep 0,0.05,0.1 -outage 50
	$(GO) run ./cmd/bffault -n 6 -lambda 0.1 -reliable -compare -kills 0,1,2

adaptive-sweep:
	$(GO) run ./cmd/bffault -n 6 -lambda 0.06 -adaptive -sweep 0,0.02,0.05,0.1
	$(GO) run ./cmd/bffault -n 6 -lambda 0.06 -adaptive -compare -kills 0,2,4

fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzPlanComposition -fuzztime=30s ./internal/faults
	$(GO) test -run='^$$' -fuzz=FuzzAdaptiveConservation -fuzztime=30s ./internal/adaptive
	$(GO) test -run='^$$' -fuzz=FuzzWireDecode -fuzztime=30s ./internal/wire
	$(GO) test -run='^$$' -fuzz=FuzzRouteSpecRoundTrip -fuzztime=15s ./internal/wire
	$(GO) test -run='^$$' -fuzz=FuzzLayoutSpecRoundTrip -fuzztime=15s ./internal/wire
	$(GO) test -run='^$$' -fuzz=FuzzSnapshotDecode -fuzztime=30s ./internal/snapshot
	$(GO) test -run='^$$' -fuzz=FuzzJournalDecode -fuzztime=30s ./internal/sweepfarm
