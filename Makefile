GO ?= go

.PHONY: all build test test-short bench vet fmt tables cover

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench . -benchmem ./...

tables:
	$(GO) run ./cmd/bftables

cover:
	$(GO) test -cover ./...
