package bfvlsi

import (
	"io"

	"bfvlsi/internal/adaptive"
	"bfvlsi/internal/analysis"
	"bfvlsi/internal/benes"
	"bfvlsi/internal/bitutil"
	"bfvlsi/internal/butterfly"
	"bfvlsi/internal/ccc"
	"bfvlsi/internal/collinear"
	"bfvlsi/internal/cubelayout"
	"bfvlsi/internal/faults"
	"bfvlsi/internal/fftsim"
	"bfvlsi/internal/grid"
	"bfvlsi/internal/hierarchy"
	"bfvlsi/internal/isn"
	"bfvlsi/internal/packaging"
	"bfvlsi/internal/reliable"
	"bfvlsi/internal/render"
	"bfvlsi/internal/routing"
	"bfvlsi/internal/thompson"
)

// GroupSpec describes the bit-group parameters (k_1, ..., k_l) of a swap
// network / ISN; see NewGroupSpec.
type GroupSpec = bitutil.GroupSpec

// NewGroupSpec validates and builds a group spec (k_1 first; every other
// width must not exceed k_1).
func NewGroupSpec(widths ...int) (GroupSpec, error) { return bitutil.NewGroupSpec(widths...) }

// Butterfly is an n-dimensional butterfly network B_n.
type Butterfly = butterfly.Butterfly

// NewButterfly constructs B_n.
func NewButterfly(n int) *Butterfly { return butterfly.New(n) }

// ISN is an indirect swap network.
type ISN = isn.ISN

// NewISN materializes the ISN of a group spec.
func NewISN(spec GroupSpec) *ISN { return isn.New(spec) }

// SwapButterfly is the butterfly automorphism obtained from an ISN by the
// Section 2.2 transformation.
type SwapButterfly = isn.SwapButterfly

// Transform applies the ISN -> butterfly transformation. Use
// (*SwapButterfly).VerifyAutomorphism to check the result against B_n.
func Transform(spec GroupSpec) *SwapButterfly { return isn.Transform(spec) }

// Layout is a built butterfly layout (geometry plus bookkeeping).
type Layout = thompson.Result

// LayoutParams configures LayoutWithParams.
type LayoutParams = thompson.Params

// SpecForDim returns the paper's group-spec choice for dimension n
// (Sections 3.2-3.3).
func SpecForDim(n int) GroupSpec { return thompson.SpecForDim(n) }

// LayoutButterfly builds the paper's optimal Thompson-model layout of an
// n-dimensional butterfly.
func LayoutButterfly(n int) (*Layout, error) {
	return thompson.Build(thompson.Params{Spec: thompson.SpecForDim(n)})
}

// LayoutMultilayer builds the Section 4 L-layer layout of B_n under the
// multilayer 2-D grid model.
func LayoutMultilayer(n, layers int) (*Layout, error) {
	return thompson.Build(thompson.Params{
		Spec:       thompson.SpecForDim(n),
		Layers:     layers,
		Multilayer: true,
	})
}

// LayoutWithParams builds a layout with full control over the spec,
// layer count, model, and node size.
func LayoutWithParams(p LayoutParams) (*Layout, error) { return thompson.Build(p) }

// LayoutStats are the measured metrics of a layout.
type LayoutStats = grid.Stats

// CollinearKN returns the paper's strictly optimal collinear track
// assignment for the complete graph K_n: exactly floor(n^2/4) tracks
// (Appendix B). It returns an error when n < 2 or when the track count
// would overflow int.
func CollinearKN(n int) (*collinear.TrackAssignment, error) { return collinear.Optimal(n) }

// Partition assigns network nodes to packaging modules.
type Partition = packaging.Partition

// PackageRows partitions a swap-butterfly with 2^k1 consecutive rows per
// module (Section 2.3, variant a).
func PackageRows(sb *SwapButterfly) *Partition { return packaging.RowPartition(sb) }

// PackageNuclei partitions a swap-butterfly into nucleus-butterfly
// modules (Section 2.3, variant b; Theorem 2.1).
func PackageNuclei(sb *SwapButterfly) *Partition { return packaging.NucleusPartition(sb) }

// BoardDesign is a chip+board design in the hierarchical layout model.
type BoardDesign = hierarchy.BoardDesign

// DesignBoard searches group specs for the best two-level packaging of
// B_n under a per-chip pin budget (Section 5.2).
func DesignBoard(n, maxPins, chipSide int) (*BoardDesign, error) {
	return hierarchy.Design(n, maxPins, chipSide)
}

// SimulateRouting runs the synchronous uniform-random-traffic simulation
// on the wrapped n-dimensional butterfly.
func SimulateRouting(p routing.Params) (*routing.Result, error) { return routing.Simulate(p) }

// RoutingParams configures SimulateRouting.
type RoutingParams = routing.Params

// SaturationRate estimates the maximum stable injection rate of the
// wrapped B_n (Theta(1/log R), the packaging lower-bound scaling).
func SaturationRate(n int, opts routing.SaturationOptions) (float64, error) {
	return routing.SaturationRate(n, opts)
}

// FaultPlan is a deterministic, seeded fault schedule for the wrapped
// butterfly: link faults, node faults, module-correlated faults, transient
// faults with repair. Attach one via RoutingParams.Faults.
type FaultPlan = faults.Plan

// NewFaultPlan returns an empty fault plan for dimension n.
func NewFaultPlan(n int) (*FaultPlan, error) { return faults.NewPlan(n) }

// RoutingPolicy selects the router's reaction to a dead planned link:
// Misroute (fault-aware fallback, the zero value) or DropDead (naive
// baseline).
type RoutingPolicy = routing.Policy

// Re-exported routing policies.
const (
	Misroute = routing.Misroute
	DropDead = routing.DropDead
)

// DefaultPacketTTL is the packet lifetime the fault sweeps use when the
// caller sets none (16n cycles).
func DefaultPacketTTL(n int) int { return faults.DefaultTTL(n) }

// FaultSweep measures throughput and latency degradation over a list of
// random link fault rates.
func FaultSweep(base RoutingParams, rates []float64) []faults.Point {
	return faults.Sweep(base, rates)
}

// FaultScheme is a packaging variant viewed as a set of failure domains.
type FaultScheme = faults.Scheme

// StandardFaultSchemes returns the row, nucleus, and naive packagings of
// B_n as failure-domain schemes.
func StandardFaultSchemes(n int) ([]FaultScheme, error) { return faults.StandardSchemes(n) }

// ModuleKillSweep fails whole modules under each scheme and measures the
// degradation - the packaging comparison of the fault subsystem.
func ModuleKillSweep(base RoutingParams, schemes []FaultScheme, kills []int) []faults.SchemePoint {
	return faults.ModuleKillSweep(base, schemes, kills)
}

// ReliableConfig tunes the end-to-end retransmission transport: base
// timeout, retry budget, backoff cap, and seeded jitter.
type ReliableConfig = reliable.Config

// DefaultReliableConfig returns a retransmission schedule suited to
// dimension n under moderate load.
func DefaultReliableConfig(n int) ReliableConfig { return reliable.DefaultConfig(n) }

// ReliableTransport is the end-to-end reliable delivery layer: per-flow
// sequence numbers, timeout/backoff retransmission, duplicate
// suppression. Attach one via RoutingParams.Reliable.
type ReliableTransport = reliable.Transport

// NewReliableTransport returns a transport with the given schedule.
func NewReliableTransport(cfg ReliableConfig) (*ReliableTransport, error) {
	return reliable.New(cfg)
}

// ReliableMode is one recovery strategy (policy x retransmission) of a
// reliability sweep.
type ReliableMode = reliable.Mode

// StandardReliableModes returns the four strategies the degradation
// sweeps compare: drop, misroute, and each with retransmission.
func StandardReliableModes() []ReliableMode { return reliable.StandardModes() }

// ReliableSweep measures goodput, p99 delivery latency, and
// retransmission overhead against permanent link faults.
func ReliableSweep(base RoutingParams, cfg ReliableConfig, modes []ReliableMode, rates []float64) []reliable.Point {
	return reliable.Sweep(base, cfg, modes, rates)
}

// ReliableOutageSweep is the transient-fault reliability sweep: random
// link outages of the given duration, the regime where retransmission
// genuinely recovers goodput.
func ReliableOutageSweep(base RoutingParams, cfg ReliableConfig, modes []ReliableMode, rates []float64, outage int) []reliable.Point {
	return reliable.OutageSweep(base, cfg, modes, rates, outage)
}

// ReliableModuleKillSweep is the packaging comparison with recovery in
// the loop: whole modules die under each scheme, every recovery mode is
// measured on the same wreckage.
func ReliableModuleKillSweep(base RoutingParams, cfg ReliableConfig, modes []ReliableMode, schemes []FaultScheme, kills []int) []reliable.SchemePoint {
	return reliable.ModuleKillSweep(base, cfg, modes, schemes, kills)
}

// AdaptiveConfig tunes the fault-aware adaptive router: breaker
// threshold, probe interval, detour budget, and epoch dissemination
// period.
type AdaptiveConfig = adaptive.Config

// DefaultAdaptiveConfig returns router tuning suited to dimension n.
func DefaultAdaptiveConfig(n int) AdaptiveConfig { return adaptive.DefaultConfig(n) }

// AdaptiveRouter is the online fault-aware router: per-link circuit
// breakers with seeded probing, bounded dimension-shift detours, and
// epoch link-state dissemination. Attach one via RoutingParams.Adaptive.
type AdaptiveRouter = adaptive.Router

// NewAdaptiveRouter returns a router with the given tuning.
func NewAdaptiveRouter(cfg AdaptiveConfig) (*AdaptiveRouter, error) { return adaptive.New(cfg) }

// AdaptiveStats summarizes what a router learned during a run.
type AdaptiveStats = adaptive.Stats

// AdaptiveMode is one recovery strategy of an adaptive sweep (static
// policy, adaptive router, or adaptive plus retransmission).
type AdaptiveMode = adaptive.Mode

// StandardAdaptiveModes returns the four strategies the E23 sweeps
// compare: drop, misroute, adaptive, and adaptive with retransmission.
func StandardAdaptiveModes() []AdaptiveMode { return adaptive.StandardModes() }

// AdaptiveSweep measures goodput degradation over permanent link fault
// rates for every recovery mode, conservation-checked per cell.
func AdaptiveSweep(base RoutingParams, cfg AdaptiveConfig, rcfg ReliableConfig, modes []AdaptiveMode, rates []float64) []adaptive.Point {
	return adaptive.Sweep(base, cfg, rcfg, modes, rates)
}

// AdaptiveModuleKillSweep is experiment E23: whole modules die under
// each packaging scheme, and the full recovery ladder (drop / misroute /
// adaptive / adaptive+retx) is measured on the same wreckage.
func AdaptiveModuleKillSweep(base RoutingParams, cfg AdaptiveConfig, rcfg ReliableConfig, modes []AdaptiveMode, schemes []FaultScheme, kills []int) []adaptive.SchemePoint {
	return adaptive.ModuleKillSweep(base, cfg, rcfg, modes, schemes, kills)
}

// Pattern selects the destination distribution of injected packets.
type Pattern = routing.Pattern

// Re-exported traffic patterns for SimulateRoutingPattern.
const (
	Uniform    = routing.Uniform
	BitReverse = routing.BitReverse
	Transpose  = routing.Transpose
	Complement = routing.Complement
	Shuffle    = routing.Shuffle
)

// SimulateRoutingPattern runs the routing simulation under a
// non-uniform destination pattern (bit-reverse, transpose, complement).
func SimulateRoutingPattern(p RoutingParams, pattern Pattern) (*routing.Result, error) {
	return routing.SimulatePattern(p, pattern)
}

// RoutingSweepPoint is one (load, throughput, latency) measurement of a
// load sweep.
type RoutingSweepPoint = routing.SweepPoint

// RoutingSweep simulates the given loads concurrently and returns the
// measurements in input order, deterministically seeded per cell.
func RoutingSweep(base RoutingParams, lambdas []float64, pattern Pattern) []RoutingSweepPoint {
	return routing.ParallelSweep(base, lambdas, pattern)
}

// SaturationFromSweep estimates the saturation rate from a load sweep:
// the largest load whose delivered throughput is at least eff times the
// offered load.
func SaturationFromSweep(points []RoutingSweepPoint, eff float64) float64 {
	return routing.SaturationFromSweep(points, eff)
}

// TheoreticalSaturation returns the analytic saturation estimate for
// the wrapped B_n under uniform traffic.
func TheoreticalSaturation(n int) float64 { return routing.TheoreticalSaturation(n) }

// ExpectedHops computes the exact mean deterministic-route path length
// of the wrapped B_n under uniform random pairs.
func ExpectedHops(n int) float64 { return routing.ExpectedHops(n) }

// Hop is one step of a recorded packet trace.
type Hop = routing.Hop

// Decision is the adaptive router's per-hop routing decision.
type Decision = routing.Decision

// DeliveryVerdict classifies a copy arriving at its destination under a
// reliable transport.
type DeliveryVerdict = routing.DeliveryVerdict

// Re-exported delivery verdicts.
const (
	DeliverAccept    = routing.DeliverAccept
	DeliverDuplicate = routing.DeliverDuplicate
	DeliverGaveUp    = routing.DeliverGaveUp
)

// FaultModel is the simulator's fault-injection hook; FaultPlan
// implements it. Attach one via RoutingParams.Faults.
type FaultModel = routing.FaultModel

// TransportHook is the simulator's end-to-end delivery hook;
// ReliableTransport implements it. Attach one via RoutingParams.Reliable.
type TransportHook = routing.Transport

// AdaptiveHook is the simulator's online fault-aware routing hook;
// AdaptiveRouter implements it. Attach one via RoutingParams.Adaptive.
type AdaptiveHook = routing.AdaptiveRouter

// RetransmitCopy is one retransmission a TransportHook asks the
// simulator to inject.
type RetransmitCopy = routing.RetransmitCopy

// PickFaultModules deterministically selects k distinct module ids for
// a module-kill experiment.
func PickFaultModules(numModules, k int, seed int64) []int {
	return faults.PickModules(numModules, k, seed)
}

// FaultSchemeFromPartition wraps any packaging partition into a
// failure-domain scheme (pass nil sb for plain-butterfly partitions).
func FaultSchemeFromPartition(name string, part *Partition, sb *SwapButterfly) (FaultScheme, error) {
	return faults.PartitionScheme(name, part, sb)
}

// ReliableStats summarizes what a reliable transport did during a run.
type ReliableStats = reliable.Stats

// RoutingSim is the stepwise form of the routing simulator: construct,
// Step cycle by cycle, capture State mid-run, Finish for the result.
// SimulateRouting remains the one-shot form; the stepwise form exists
// for checkpoint/resume workflows (internal/snapshot, cmd/bfsweep) and
// their distributed fan-out (internal/dispatch, cmd/bffarm), which
// ships checkpoints to a bfserve fleet and merges worker journals.
type RoutingSim = routing.Sim

// NewRoutingSim constructs a stepwise simulator from the same
// parameters as SimulateRoutingPattern.
func NewRoutingSim(p RoutingParams, pattern Pattern) (*RoutingSim, error) {
	return routing.NewSim(p, pattern)
}

// RoutingSimState is a captured mid-run simulator state: queues,
// in-flight packets, RNG position, and conservation counters. Obtain
// one from (*RoutingSim).State, rebuild with RestoreRoutingSim.
type RoutingSimState = routing.SimState

// PacketState is one in-flight packet of a captured RoutingSimState.
type PacketState = routing.PacketState

// RestoreRoutingSim rebuilds a running simulator from captured state;
// the continuation is packet-for-packet identical to the original run.
func RestoreRoutingSim(p RoutingParams, pattern Pattern, st *RoutingSimState) (*RoutingSim, error) {
	return routing.RestoreSim(p, pattern, st)
}

// ReliableTransportState is a captured reliable-transport state
// (sequence numbers, pending flows, retransmission timers, RNG
// position); see (*ReliableTransport).State and RestoreState.
type ReliableTransportState = reliable.State

// ReliablePendingState is one unacknowledged flow of a captured
// transport state.
type ReliablePendingState = reliable.PendingState

// ReliableTimerState is one pending retransmission timer of a captured
// transport state.
type ReliableTimerState = reliable.TimerState

// AdaptiveRouterState is a captured adaptive-router state (breaker
// counters, open links, dead-link map, epoch clock); see
// (*AdaptiveRouter).State and RestoreState.
type AdaptiveRouterState = adaptive.State

// The panicking constructor conveniences stay internal: the facade
// exposes only the error-returning forms.
//
//facade:exempt faults.MustPlan panicking convenience for internal sweeps and tests
//facade:exempt reliable.MustNew panicking convenience for internal sweeps and tests

// RoutingModules projects a partition onto the wrapped butterfly the
// routing simulator runs on (pass nil sb for plain-butterfly partitions),
// for use with FaultPlan.AddModuleFault.
func RoutingModules(p *Partition, sb *SwapButterfly) ([]int, error) {
	return packaging.RoutingModuleOf(p, sb)
}

// FFTOnISN executes a DFT along the stages of an ISN and returns the
// spectrum plus communication-step accounting.
func FFTOnISN(in *ISN, x []complex128) (*fftsim.Result, error) { return fftsim.OnISN(in, x) }

// PaperThompsonArea returns the paper's Thompson-model area bound
// N^2/log2^2 N for B_n.
func PaperThompsonArea(n int) float64 { return analysis.ThompsonArea(n) }

// PaperMultilayerArea returns the Theorem 4.1 L-layer area bound.
func PaperMultilayerArea(n, layers int) float64 { return analysis.MultilayerArea(n, layers) }

// Benes is a rearrangeable Benes permutation network with its switch
// settings (two back-to-back butterflies; see the paper's introduction).
type Benes = benes.Benes

// NewBenes returns an n-dimensional Benes network (2^n ports per side).
func NewBenes(n int) *Benes { return benes.New(n) }

// LayoutHypercube lays out Q_n with the paper's grid-of-collinear-layouts
// technique (the conclusion's "other networks" extension).
func LayoutHypercube(n int) (*cubelayout.Result, error) { return cubelayout.Hypercube(n) }

// LayoutTorus lays out the k-ary 2-cube likewise.
func LayoutTorus(k int) (*cubelayout.Result, error) { return cubelayout.Torus(k) }

// CCC is a cube-connected cycles network.
type CCC = ccc.CCC

// NewCCC constructs CCC(n) with a verifier, cycle packaging, and a
// grid-of-collinear layout (the [7] companion topology).
func NewCCC(n int) *CCC { return ccc.New(n) }

// RenderSVG writes any built layout as an SVG image.
func RenderSVG(w io.Writer, l *grid.Layout, opts render.Options) error {
	return render.SVG(w, l, opts)
}

// SVGOptions configures RenderSVG.
type SVGOptions = render.Options

// MultiLevelDesign is a three-level (chip/board/cabinet) packaging.
type MultiLevelDesign = hierarchy.MultiLevelDesign

// DesignMultiLevelBoard builds the three-level packaging of a 3-level
// group spec (chips from the row partition, boards from block-grid rows).
func DesignMultiLevelBoard(spec GroupSpec) (*MultiLevelDesign, error) {
	return hierarchy.DesignMultiLevel(spec)
}
