// Command bflayout builds a butterfly layout and prints its measured
// metrics next to the paper's bounds.
//
// Usage:
//
//	bflayout -n 9                       # Thompson layout of B_9
//	bflayout -spec 3,3,3 -L 8 -ml       # 8-layer multilayer layout
//	bflayout -n 6 -nodeside 8 -validate # big nodes, full rule check
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"bfvlsi/internal/analysis"
	"bfvlsi/internal/bitutil"
	"bfvlsi/internal/render"
	"bfvlsi/internal/thompson"
)

var (
	dim      = flag.Int("n", 0, "butterfly dimension (uses the paper's spec choice)")
	specFlag = flag.String("spec", "", "explicit group spec, e.g. 3,3,3 (overrides -n)")
	layers   = flag.Int("L", 2, "number of wiring layers")
	ml       = flag.Bool("ml", false, "use the multilayer 2-D grid model")
	nodeSide = flag.Int("nodeside", 0, "node box side (0 = minimum, 4)")
	validate = flag.Bool("validate", false, "run the full geometric rule check")
	svgPath  = flag.String("svg", "", "write the layout as SVG to this file")
	jsonPath = flag.String("json", "", "write the layout as JSON to this file")
)

func main() {
	flag.Parse()
	spec, err := resolveSpec()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	res, err := thompson.Build(thompson.Params{
		Spec:       spec,
		Layers:     *layers,
		Multilayer: *ml,
		NodeSide:   *nodeSide,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	n := spec.TotalBits()
	st := res.L.Stats()
	model := "Thompson"
	if *ml {
		model = fmt.Sprintf("multilayer (L=%d)", res.Layers)
	}
	fmt.Printf("B_%d via ISN%v under the %s model\n", n, spec, model)
	fmt.Printf("  block grid %dx%d, %d rows/block, block %dx%d\n",
		res.GridRows, res.GridCols, res.RowsPerBlock, res.BlockW, res.BlockH)
	fmt.Printf("  band height %d (of %d raw tracks), column width %d (of %d)\n",
		res.BandH, res.FullBandTracks, res.ColW, res.FullColTracks)
	fmt.Printf("  measured: %s\n", st)
	if *ml {
		fmt.Printf("  paper: area %.0f, max wire %.0f, volume %.0f\n",
			analysis.MultilayerArea(n, res.Layers),
			analysis.MultilayerMaxWire(n, res.Layers),
			analysis.MultilayerVolume(n, res.Layers))
	} else {
		fmt.Printf("  paper: area %.0f (leading 2^2n = %.0f), max wire %.0f\n",
			analysis.ThompsonArea(n), analysis.LeadingAreaExact(n), analysis.ThompsonMaxWire(n))
	}
	if *validate {
		if err := res.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "VALIDATION FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("  validation: OK (all model rules hold)")
	}
	if *svgPath != "" {
		if err := writeFile(*svgPath, func(w io.Writer) error {
			return render.SVG(w, res.L, render.Options{})
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  wrote %s\n", *svgPath)
	}
	if *jsonPath != "" {
		if err := writeFile(*jsonPath, res.L.WriteJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  wrote %s\n", *jsonPath)
	}
}

func writeFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		_ = f.Close() // the write error takes precedence
		return err
	}
	return f.Close()
}

func resolveSpec() (bitutil.GroupSpec, error) {
	if *specFlag != "" {
		parts := strings.Split(*specFlag, ",")
		widths := make([]int, 0, len(parts))
		for _, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return bitutil.GroupSpec{}, fmt.Errorf("bad spec %q: %v", *specFlag, err)
			}
			widths = append(widths, v)
		}
		return bitutil.NewGroupSpec(widths...)
	}
	if *dim > 0 {
		return thompson.SpecForDim(*dim), nil
	}
	return bitutil.GroupSpec{}, fmt.Errorf("need -n or -spec")
}
