// Command bfsweep runs a resumable fault-scenario sweep farm (see
// internal/sweepfarm): one base run is warmed up and checkpointed at
// the fork cycle, then every fault rate × fault seed combination forks
// that checkpoint on a worker pool. With -journal the farm survives
// being killed at any point: completed points are fsynced to the
// journal and a rerun simulates only what is missing.
//
// Usage:
//
//	bfsweep -n 6 -lambda 0.2 -rates 0.01,0.02,0.05 -faultseeds 1,2,3
//	bfsweep -n 6 -lambda 0.2 -rates 0.02 -reliable -adaptive
//	bfsweep -n 6 -lambda 0.2 -rates 0.02 -journal sweep.bin -workers 8
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"bfvlsi/internal/snapshot"
	"bfvlsi/internal/sweepfarm"
	"bfvlsi/internal/wire"
)

// options carries every flag value. Parsing and validation are pure (no
// exits, no prints): main turns a validation error into the exit-2
// usage path, and the tests drive the same code with table argv lists.
type options struct {
	dim        int
	lambda     float64
	warmup     int
	cycles     int
	seed       int64
	buffers    int
	ttl        int
	reliable   bool
	adaptive   bool
	rates      string
	faultSeeds string
	control    bool
	fork       int
	workers    int
	journal    string

	rateList []float64
	seedList []int64
}

// newOptions registers every flag on the given set.
func newOptions(set *flag.FlagSet) *options {
	o := &options{}
	set.IntVar(&o.dim, "n", 6, "butterfly dimension")
	set.Float64Var(&o.lambda, "lambda", 0.1, "per-node injection probability")
	set.IntVar(&o.warmup, "warmup", 200, "warmup cycles")
	set.IntVar(&o.cycles, "cycles", 600, "measured cycles")
	set.Int64Var(&o.seed, "seed", 1, "traffic seed")
	set.IntVar(&o.buffers, "buffers", 4, "per-link buffer limit (0 = unbounded)")
	set.IntVar(&o.ttl, "ttl", 0, "packet TTL (0 = default for faulted runs)")
	set.BoolVar(&o.reliable, "reliable", false, "layer the reliable transport over every run")
	set.BoolVar(&o.adaptive, "adaptive", false, "use the adaptive fault-aware router")
	set.StringVar(&o.rates, "rates", "0.01,0.02,0.05", "comma-separated link fault rates")
	set.StringVar(&o.faultSeeds, "faultseeds", "1,2,3", "comma-separated fault-plan seeds")
	set.BoolVar(&o.control, "control", true, "include a fault-free control point")
	set.IntVar(&o.fork, "fork", -1, "fork cycle for the warmed-up checkpoint (-1 = end of warmup)")
	set.IntVar(&o.workers, "workers", 4, "fork worker pool size")
	set.StringVar(&o.journal, "journal", "", "completed-point journal path (empty = not resumable)")
	return o
}

// validate audits flag ranges and parses the list-valued flags.
func (o *options) validate() error {
	if o.dim < 1 || o.dim > 14 {
		return fmt.Errorf("-n %d out of range [1,14]", o.dim)
	}
	if o.lambda <= 0 || o.lambda > 1 {
		return fmt.Errorf("-lambda %v outside (0,1]", o.lambda)
	}
	if o.warmup < 0 || o.cycles <= 0 {
		return fmt.Errorf("-warmup %d / -cycles %d invalid", o.warmup, o.cycles)
	}
	if o.buffers < 0 || o.ttl < 0 {
		return fmt.Errorf("-buffers %d / -ttl %d negative", o.buffers, o.ttl)
	}
	if o.workers < 1 {
		return fmt.Errorf("-workers %d must be at least 1", o.workers)
	}
	if o.fork < -1 || o.fork > o.warmup+o.cycles {
		return fmt.Errorf("-fork %d outside [0,%d]", o.fork, o.warmup+o.cycles)
	}
	var err error
	if o.rateList, err = parseFloats(o.rates); err != nil {
		return fmt.Errorf("-rates: %w", err)
	}
	for _, r := range o.rateList {
		if r <= 0 || r >= 1 {
			return fmt.Errorf("-rates: rate %v outside (0,1)", r)
		}
	}
	if o.seedList, err = parseInts(o.faultSeeds); err != nil {
		return fmt.Errorf("-faultseeds: %w", err)
	}
	if len(o.rateList)*len(o.seedList) == 0 && !o.control {
		return fmt.Errorf("no sweep points: empty -rates or -faultseeds and -control=false")
	}
	return nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// pointLabel describes one sweep point for the report table.
type pointLabel struct {
	rate float64
	seed int64
}

// farmSpec assembles the sweepfarm spec and the per-point labels.
func (o *options) farmSpec() (sweepfarm.Spec, []pointLabel) {
	base := snapshot.Spec{
		Route: wire.RouteSpec{
			N: o.dim, Lambda: o.lambda, Warmup: o.warmup, Cycles: o.cycles,
			Seed: o.seed, BufferLimit: o.buffers, TTL: o.ttl,
		},
	}
	if o.reliable {
		base.Reliable = &snapshot.ReliableSpec{
			Timeout: 4 * o.dim, MaxRetries: 5, Jitter: 3, Seed: o.seed + 1,
			MeasureFrom: o.warmup,
		}
	}
	if o.adaptive {
		base.Adaptive = &snapshot.AdaptiveSpec{Seed: o.seed + 2}
	}
	fork := o.fork
	if fork < 0 {
		fork = o.warmup
	}
	var points []*wire.FaultSpec
	var labels []pointLabel
	if o.control {
		points = append(points, nil)
		labels = append(labels, pointLabel{})
	}
	for _, rate := range o.rateList {
		for _, seed := range o.seedList {
			points = append(points, &wire.FaultSpec{N: o.dim, LinkRate: rate, Seed: seed})
			labels = append(labels, pointLabel{rate: rate, seed: seed})
		}
	}
	return sweepfarm.Spec{Base: base, ForkCycle: fork, Points: points}, labels
}

// run executes the farm and writes the report table; it returns the
// process exit code.
func run(o *options, stdout, stderr io.Writer) int {
	spec, labels := o.farmSpec()
	rep, err := sweepfarm.Run(spec, sweepfarm.Options{
		Workers: o.workers,
		Journal: o.journal,
	})
	if err != nil {
		fmt.Fprintln(stderr, "bfsweep:", err)
		return 1
	}
	fmt.Fprintf(stdout, "B_%d lambda=%.4f, %d points (%d from journal), fork at cycle %d\n",
		o.dim, o.lambda, len(rep.Points), rep.Resumed, spec.ForkCycle)
	w := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "point\trate\tseed\tthroughput\tdelivered\tdropped\tunreachable\tretransmit\tgaveup\n")
	for _, p := range rep.Points {
		l := labels[p.Index]
		r := p.Result
		scenario := "control"
		seed := "-"
		if l.rate > 0 {
			scenario = fmt.Sprintf("%.4f", l.rate)
			seed = strconv.FormatInt(l.seed, 10)
		}
		fmt.Fprintf(w, "%d\t%s\t%s\t%.4f\t%d\t%d\t%d\t%d\t%d\n",
			p.Index, scenario, seed, r.Throughput, r.Delivered, r.Dropped,
			r.Unreachable, r.Retransmitted, r.GaveUp)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(stderr, "bfsweep:", err)
		return 1
	}
	return 0
}

func main() {
	set := flag.NewFlagSet("bfsweep", flag.ExitOnError)
	o := newOptions(set)
	_ = set.Parse(os.Args[1:])
	if err := o.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "bfsweep:", err)
		set.Usage()
		os.Exit(2)
	}
	os.Exit(run(o, os.Stdout, os.Stderr))
}
