package main

import (
	"bytes"
	"flag"
	"path/filepath"
	"strings"
	"testing"
)

// parse runs the flag/validate pipeline the way main does, returning
// the options or the validation error.
func parse(t *testing.T, args ...string) (*options, error) {
	t.Helper()
	set := flag.NewFlagSet("bfsweep", flag.ContinueOnError)
	set.SetOutput(&bytes.Buffer{})
	o := newOptions(set)
	if err := set.Parse(args); err != nil {
		return nil, err
	}
	return o, o.validate()
}

func TestValidateRejects(t *testing.T) {
	cases := [][]string{
		{"-n", "0"},
		{"-n", "15"},
		{"-lambda", "0"},
		{"-lambda", "1.5"},
		{"-cycles", "0"},
		{"-workers", "0"},
		{"-rates", "0.1,nope"},
		{"-rates", "1.5"},
		{"-faultseeds", "x"},
		{"-fork", "99999"},
		{"-rates", "", "-faultseeds", "", "-control=false"},
	}
	for _, args := range cases {
		if _, err := parse(t, args...); err == nil {
			t.Errorf("args %v: validation accepted", args)
		}
	}
}

func TestFarmSpecShape(t *testing.T) {
	o, err := parse(t, "-n", "3", "-rates", "0.02,0.05", "-faultseeds", "1,2,3", "-reliable", "-adaptive")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	spec, labels := o.farmSpec()
	if want := 1 + 2*3; len(spec.Points) != want || len(labels) != want {
		t.Fatalf("got %d points / %d labels, want %d", len(spec.Points), len(labels), want)
	}
	if spec.Points[0] != nil {
		t.Fatalf("first point is not the fault-free control")
	}
	if spec.Base.Reliable == nil || spec.Base.Adaptive == nil {
		t.Fatalf("-reliable/-adaptive did not attach the hooks")
	}
	if spec.ForkCycle != o.warmup {
		t.Fatalf("default fork cycle %d, want end of warmup %d", spec.ForkCycle, o.warmup)
	}
	if err := spec.Validate(); err != nil {
		t.Fatalf("assembled spec invalid: %v", err)
	}
}

// TestRunEndToEnd drives the whole command on a small farm, twice over
// the same journal: the second run must replay every point from the
// journal and print the same table.
func TestRunEndToEnd(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "journal.bin")
	o, err := parse(t,
		"-n", "3", "-lambda", "0.3", "-warmup", "20", "-cycles", "60",
		"-buffers", "4", "-ttl", "48", "-rates", "0.03,0.06", "-faultseeds", "1,2",
		"-workers", "3", "-journal", journal)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var out1, errBuf bytes.Buffer
	if code := run(o, &out1, &errBuf); code != 0 {
		t.Fatalf("run exited %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out1.String(), "5 points (0 from journal)") {
		t.Fatalf("fresh run header wrong:\n%s", out1.String())
	}
	if !strings.Contains(out1.String(), "control") {
		t.Fatalf("table lacks the control row:\n%s", out1.String())
	}

	var out2 bytes.Buffer
	if code := run(o, &out2, &errBuf); code != 0 {
		t.Fatalf("resumed run exited %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out2.String(), "5 points (5 from journal)") {
		t.Fatalf("resumed run header wrong:\n%s", out2.String())
	}
	table := func(s string) string { return s[strings.Index(s, "\npoint"):] }
	if table(out1.String()) != table(out2.String()) {
		t.Fatalf("journal replay changed the table:\n%s\nvs\n%s", out1.String(), out2.String())
	}
}
