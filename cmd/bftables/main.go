// Command bftables regenerates every experiment table and figure of the
// paper reproduction (see DESIGN.md for the experiment index E1-E18 and
// EXPERIMENTS.md for recorded paper-vs-measured results).
//
// Usage:
//
//	bftables [-quick] [experiment ...]
//
// With no arguments every experiment runs in order. Experiment names are
// e1..e20. -quick shrinks the slowest sweeps for smoke runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"bfvlsi/internal/experiments"
)

var quick = flag.Bool("quick", false, "shrink slow sweeps for a fast smoke run")

func main() {
	flag.Parse()
	want := flag.Args()
	selected := func(name string) bool {
		if len(want) == 0 {
			return true
		}
		for _, w := range want {
			if w == name {
				return true
			}
		}
		return false
	}
	cfg := &experiments.Config{W: os.Stdout, Quick: *quick}
	ran := 0
	for _, ex := range experiments.All() {
		if !selected(ex.Name) {
			continue
		}
		ran++
		fmt.Printf("==== %s: %s ====\n", ex.Name, ex.Desc)
		if err := ex.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", ex.Name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %v (have e1..e20)\n", want)
		os.Exit(2)
	}
}
