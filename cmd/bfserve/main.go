// Command bfserve runs the layout-and-routing query daemon: an
// HTTP/JSON front end over the repository's layout constructions,
// packaging partitions, routing simulations, and checkpoint/what-if
// queries, with a content-addressed artifact cache (see internal/serve).
//
// Usage:
//
//	bfserve                         # listen on :8417
//	bfserve -addr 127.0.0.1:9000    # explicit listen address
//	bfserve -cache 1024             # artifact cache capacity, entries
//	bfserve -cachebytes 33554432    # artifact cache body budget, bytes
//	bfserve -timeout 30s            # per-request handling deadline
//	bfserve -maxdim 10              # cap accepted butterfly dimensions
//	bfserve -drain 15s              # graceful-shutdown drain deadline
//	bfserve -maxinflight 64         # shed /v1/ load beyond this concurrency
//
// Endpoints: POST /v1/layout, /v1/packaging, /v1/route, /v1/faultsweep,
// /v1/checkpoint, /v1/whatif; GET /healthz, /statsz. Responses carry
// X-Bfserve-Key (the artifact's content address) and X-Bfserve-Cache
// (hit or miss).
//
// On SIGINT or SIGTERM the daemon stops accepting connections and
// drains in-flight requests for up to the -drain deadline, then exits 0
// on a clean drain and 1 if the deadline expired with requests still
// running.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bfvlsi/internal/serve"
)

// options carries every flag value. Parsing and validation are pure (no
// exits, no prints): main turns a validation error into the exit-2
// usage path, and the tests drive the same code with table argv lists.
type options struct {
	addr        string
	cache       int
	cacheBytes  int64
	timeout     time.Duration
	maxDim      int
	drain       time.Duration
	maxInflight int
}

// newOptions registers every flag on the given set.
func newOptions(set *flag.FlagSet) *options {
	o := &options{}
	set.StringVar(&o.addr, "addr", ":8417", "listen address")
	set.IntVar(&o.cache, "cache", serve.DefaultCacheEntries, "artifact cache capacity, entries")
	set.Int64Var(&o.cacheBytes, "cachebytes", serve.DefaultCacheBytes,
		"artifact cache body budget, bytes (negative = entry bound only)")
	set.DurationVar(&o.timeout, "timeout", 60*time.Second, "per-request handling deadline (0 = none)")
	set.IntVar(&o.maxDim, "maxdim", serve.DefaultMaxDim, "largest accepted butterfly dimension")
	set.DurationVar(&o.drain, "drain", 10*time.Second, "graceful-shutdown drain deadline")
	set.IntVar(&o.maxInflight, "maxinflight", 0,
		"cap on concurrently handled /v1/ requests; excess answered 503 with Retry-After (0 = no cap)")
	return o
}

// parseOptions parses argv and validates the combination. It never
// exits or prints beyond the FlagSet's own output.
func parseOptions(args []string) (*options, error) {
	set := flag.NewFlagSet("bfserve", flag.ContinueOnError)
	o := newOptions(set)
	if err := set.Parse(args); err != nil {
		return nil, err
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	return o, nil
}

// validate audits flag ranges.
func (o *options) validate() error {
	if o.addr == "" {
		return fmt.Errorf("-addr must not be empty")
	}
	if o.cache < 1 {
		return fmt.Errorf("-cache %d must be at least 1", o.cache)
	}
	if o.cacheBytes == 0 {
		return fmt.Errorf("-cachebytes 0 is ambiguous: give a budget or a negative value for no byte bound")
	}
	if o.timeout < 0 {
		return fmt.Errorf("-timeout %v is negative", o.timeout)
	}
	if o.maxDim < 1 || o.maxDim > 14 {
		return fmt.Errorf("-maxdim %d out of range [1,14]", o.maxDim)
	}
	if o.drain <= 0 {
		return fmt.Errorf("-drain %v must be positive", o.drain)
	}
	if o.maxInflight < 0 {
		return fmt.Errorf("-maxinflight %d is negative (0 disables the cap)", o.maxInflight)
	}
	return nil
}

// server builds the configured serve.Server.
func (o *options) server() *serve.Server {
	return serve.New(serve.Config{
		CacheEntries: o.cache,
		CacheBytes:   o.cacheBytes,
		MaxDim:       o.maxDim,
		Timeout:      o.timeout,
		MaxInflight:  o.maxInflight,
		// The daemon is where determinism ends and operations begin:
		// this is the repo's one wall-clock injection point for the
		// service (latency metrics on /statsz).
		Now: time.Now, //bflint:ignore detrand
	})
}

// run listens, serves, and drains on the first signal. ready (if
// non-nil) receives the bound address once the listener is up, so tests
// can use ":0". The return value is the process exit code: 0 for a
// clean drain, 1 for listen/serve failures or a blown drain deadline.
func run(o *options, ready chan<- string, sigs <-chan os.Signal, stdout, stderr io.Writer) int {
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		fmt.Fprintln(stderr, "bfserve:", err)
		return 1
	}
	// Every request context descends from rootCtx: when the drain
	// deadline passes, cancelling it tells still-running handlers their
	// client is gone, on top of the per-request TimeoutHandler deadline.
	rootCtx, cancelRoot := context.WithCancel(context.Background())
	defer cancelRoot()
	srv := &http.Server{
		Handler:           o.server().Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return rootCtx },
	}
	drained := make(chan int, 1)
	go func() {
		sig := <-sigs
		fmt.Fprintf(stdout, "bfserve: %v: draining in-flight requests (up to %v)\n", sig, o.drain)
		ctx, cancel := context.WithTimeout(context.Background(), o.drain)
		defer cancel()
		err := srv.Shutdown(ctx)
		cancelRoot()
		if err != nil {
			fmt.Fprintln(stderr, "bfserve: drain deadline exceeded:", err)
			drained <- 1
			return
		}
		fmt.Fprintln(stdout, "bfserve: drained cleanly")
		drained <- 0
	}()
	fmt.Fprintf(stdout, "bfserve listening on %s (cache %d entries / %d bytes, maxdim %d)\n",
		ln.Addr(), o.cache, o.cacheBytes, o.maxDim)
	if ready != nil {
		ready <- ln.Addr().String()
	}
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(stderr, "bfserve:", err)
		return 1
	}
	return <-drained
}

func main() {
	set := flag.NewFlagSet("bfserve", flag.ExitOnError)
	o := newOptions(set)
	_ = set.Parse(os.Args[1:])
	if err := o.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "bfserve:", err)
		set.Usage()
		os.Exit(2)
	}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	os.Exit(run(o, nil, sigs, os.Stdout, os.Stderr))
}
