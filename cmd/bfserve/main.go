// Command bfserve runs the layout-and-routing query daemon: an
// HTTP/JSON front end over the repository's layout constructions,
// packaging partitions, and routing simulations, with a
// content-addressed artifact cache (see internal/serve).
//
// Usage:
//
//	bfserve                         # listen on :8417
//	bfserve -addr 127.0.0.1:9000    # explicit listen address
//	bfserve -cache 1024             # artifact cache capacity
//	bfserve -timeout 30s            # per-request handling deadline
//	bfserve -maxdim 10              # cap accepted butterfly dimensions
//
// Endpoints: POST /v1/layout, /v1/packaging, /v1/route, /v1/faultsweep;
// GET /healthz, /statsz. Responses carry X-Bfserve-Key (the artifact's
// content address) and X-Bfserve-Cache (hit or miss).
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"bfvlsi/internal/serve"
)

// options carries every flag value. Parsing and validation are pure (no
// exits, no prints): main turns a validation error into the exit-2
// usage path, and the tests drive the same code with table argv lists.
type options struct {
	addr    string
	cache   int
	timeout time.Duration
	maxDim  int
}

// newOptions registers every flag on the given set.
func newOptions(set *flag.FlagSet) *options {
	o := &options{}
	set.StringVar(&o.addr, "addr", ":8417", "listen address")
	set.IntVar(&o.cache, "cache", serve.DefaultCacheEntries, "artifact cache capacity, entries")
	set.DurationVar(&o.timeout, "timeout", 60*time.Second, "per-request handling deadline (0 = none)")
	set.IntVar(&o.maxDim, "maxdim", serve.DefaultMaxDim, "largest accepted butterfly dimension")
	return o
}

// parseOptions parses argv and validates the combination. It never
// exits or prints beyond the FlagSet's own output.
func parseOptions(args []string) (*options, error) {
	set := flag.NewFlagSet("bfserve", flag.ContinueOnError)
	o := newOptions(set)
	if err := set.Parse(args); err != nil {
		return nil, err
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	return o, nil
}

// validate audits flag ranges.
func (o *options) validate() error {
	if o.addr == "" {
		return fmt.Errorf("-addr must not be empty")
	}
	if o.cache < 1 {
		return fmt.Errorf("-cache %d must be at least 1", o.cache)
	}
	if o.timeout < 0 {
		return fmt.Errorf("-timeout %v is negative", o.timeout)
	}
	if o.maxDim < 1 || o.maxDim > 14 {
		return fmt.Errorf("-maxdim %d out of range [1,14]", o.maxDim)
	}
	return nil
}

// server builds the configured serve.Server.
func (o *options) server() *serve.Server {
	return serve.New(serve.Config{
		CacheEntries: o.cache,
		MaxDim:       o.maxDim,
		Timeout:      o.timeout,
		// The daemon is where determinism ends and operations begin:
		// this is the repo's one wall-clock injection point for the
		// service (latency metrics on /statsz).
		Now: time.Now, //bflint:ignore detrand
	})
}

func usageError(set *flag.FlagSet, err error) {
	fmt.Fprintln(os.Stderr, "bfserve:", err)
	set.Usage()
	os.Exit(2)
}

func main() {
	set := flag.NewFlagSet("bfserve", flag.ExitOnError)
	o := newOptions(set)
	_ = set.Parse(os.Args[1:])
	if err := o.validate(); err != nil {
		usageError(set, err)
	}
	srv := &http.Server{
		Addr:              o.addr,
		Handler:           o.server().Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("bfserve listening on %s (cache %d entries, maxdim %d)\n", o.addr, o.cache, o.maxDim)
	if err := srv.ListenAndServe(); err != nil {
		fmt.Fprintln(os.Stderr, "bfserve:", err)
		os.Exit(1)
	}
}
