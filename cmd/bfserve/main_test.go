package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"
)

func TestParseOptions(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"defaults", nil, ""},
		{"explicit addr", []string{"-addr", "127.0.0.1:9000"}, ""},
		{"cache and timeout", []string{"-cache", "16", "-timeout", "5s"}, ""},
		{"timeout off", []string{"-timeout", "0"}, ""},
		{"maxdim bounds", []string{"-maxdim", "14"}, ""},
		{"byte budget", []string{"-cachebytes", "4096"}, ""},
		{"byte bound off", []string{"-cachebytes", "-1"}, ""},
		{"drain tuned", []string{"-drain", "1s"}, ""},
		{"empty addr", []string{"-addr", ""}, "-addr must not be empty"},
		{"zero cache", []string{"-cache", "0"}, "must be at least 1"},
		{"negative cache", []string{"-cache", "-3"}, "must be at least 1"},
		{"zero cachebytes", []string{"-cachebytes", "0"}, "ambiguous"},
		{"negative timeout", []string{"-timeout", "-1s"}, "is negative"},
		{"maxdim zero", []string{"-maxdim", "0"}, "out of range [1,14]"},
		{"maxdim huge", []string{"-maxdim", "15"}, "out of range [1,14]"},
		{"zero drain", []string{"-drain", "0"}, "must be positive"},
		{"negative drain", []string{"-drain", "-2s"}, "must be positive"},
		{"inflight cap", []string{"-maxinflight", "64"}, ""},
		{"inflight off", []string{"-maxinflight", "0"}, ""},
		{"negative inflight", []string{"-maxinflight", "-1"}, "is negative"},
		{"unknown flag", []string{"-port", "80"}, "flag provided but not defined"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			o, err := parseOptions(c.args)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if o == nil {
					t.Fatal("nil options without error")
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error containing %q, got none", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not contain %q", err, c.wantErr)
			}
		})
	}
}

func TestServerConstruction(t *testing.T) {
	o, err := parseOptions([]string{"-cache", "8", "-maxdim", "6"})
	if err != nil {
		t.Fatal(err)
	}
	if o.server() == nil {
		t.Fatal("server construction returned nil")
	}
}

// startRun launches run on an ephemeral port and returns the bound
// address, the injectable signal channel, and a channel yielding the
// exit code.
func startRun(t *testing.T, args ...string) (addr string, sigs chan os.Signal, exit <-chan int, out *bytes.Buffer) {
	t.Helper()
	o, err := parseOptions(append([]string{"-addr", "127.0.0.1:0"}, args...))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ready := make(chan string, 1)
	sigs = make(chan os.Signal, 1)
	code := make(chan int, 1)
	out = &bytes.Buffer{}
	var errBuf bytes.Buffer
	go func() { code <- run(o, ready, sigs, out, &errBuf) }()
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("listener never came up; stderr: %s", errBuf.String())
	}
	return addr, sigs, code, out
}

// TestRunGracefulShutdown serves a real request, sends SIGINT through
// the injected channel, and expects a clean exit 0 with no further
// connections accepted.
func TestRunGracefulShutdown(t *testing.T) {
	addr, sigs, exit, out := startRun(t, "-drain", "5s")

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz returned %d %q", resp.StatusCode, body)
	}

	// A real query too, so the drain path has seen traffic.
	req := strings.NewReader(`{"family":"collinear","n":8}`)
	resp, err = http.Post("http://"+addr+"/v1/layout", "application/json", req)
	if err != nil {
		t.Fatalf("layout: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("layout returned %d", resp.StatusCode)
	}

	sigs <- os.Interrupt
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d, want 0; output:\n%s", code, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after SIGINT")
	}
	if !strings.Contains(out.String(), "drained cleanly") {
		t.Fatalf("missing drain confirmation:\n%s", out.String())
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("listener still accepting connections after shutdown")
	}
}

// TestRunListenFailure occupies a port and expects run to exit 1
// immediately when it cannot listen.
func TestRunListenFailure(t *testing.T) {
	addr, sigs, exit, _ := startRun(t)
	defer func() {
		sigs <- os.Interrupt
		<-exit
	}()

	o, err := parseOptions([]string{"-addr", addr})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var out, errBuf bytes.Buffer
	if code := run(o, nil, make(chan os.Signal), &out, &errBuf); code != 1 {
		t.Fatalf("exit code %d, want 1; stderr: %s", code, errBuf.String())
	}
	if errBuf.Len() == 0 {
		t.Fatal("listen failure produced no diagnostic")
	}
}

// TestRunCacheBytesWired confirms the -cachebytes flag reaches the
// server: a one-byte budget forces evictions visible in /statsz.
func TestRunCacheBytesWired(t *testing.T) {
	addr, sigs, exit, _ := startRun(t, "-cachebytes", "1")
	defer func() {
		sigs <- os.Interrupt
		<-exit
	}()

	for n := 7; n <= 8; n++ {
		req := strings.NewReader(fmt.Sprintf(`{"family":"collinear","n":%d}`, n))
		resp, err := http.Post("http://"+addr+"/v1/layout", "application/json", req)
		if err != nil {
			t.Fatalf("layout n=%d: %v", n, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("layout n=%d returned %d", n, resp.StatusCode)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp, err := http.Get("http://" + addr + "/statsz")
	if err != nil {
		t.Fatalf("statsz: %v", err)
	}
	defer resp.Body.Close()
	var stats struct {
		CacheByteCapacity int64 `json:"cacheByteCapacity"`
		CacheEvictions    int64 `json:"cacheEvictions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("decode statsz: %v", err)
	}
	if stats.CacheByteCapacity != 1 {
		t.Fatalf("cacheByteCapacity %d, want 1", stats.CacheByteCapacity)
	}
	if stats.CacheEvictions < 2 {
		t.Fatalf("cacheEvictions %d, want >= 2", stats.CacheEvictions)
	}
}
