package main

import (
	"strings"
	"testing"
)

func TestParseOptions(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"defaults", nil, ""},
		{"explicit addr", []string{"-addr", "127.0.0.1:9000"}, ""},
		{"cache and timeout", []string{"-cache", "16", "-timeout", "5s"}, ""},
		{"timeout off", []string{"-timeout", "0"}, ""},
		{"maxdim bounds", []string{"-maxdim", "14"}, ""},
		{"empty addr", []string{"-addr", ""}, "-addr must not be empty"},
		{"zero cache", []string{"-cache", "0"}, "must be at least 1"},
		{"negative cache", []string{"-cache", "-3"}, "must be at least 1"},
		{"negative timeout", []string{"-timeout", "-1s"}, "is negative"},
		{"maxdim zero", []string{"-maxdim", "0"}, "out of range [1,14]"},
		{"maxdim huge", []string{"-maxdim", "15"}, "out of range [1,14]"},
		{"unknown flag", []string{"-port", "80"}, "flag provided but not defined"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			o, err := parseOptions(c.args)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if o == nil {
					t.Fatal("nil options without error")
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error containing %q, got none", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not contain %q", err, c.wantErr)
			}
		})
	}
}

func TestServerConstruction(t *testing.T) {
	o, err := parseOptions([]string{"-cache", "8", "-maxdim", "6"})
	if err != nil {
		t.Fatal(err)
	}
	if o.server() == nil {
		t.Fatal("server construction returned nil")
	}
}
