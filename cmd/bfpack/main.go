// Command bfpack explores butterfly partitioning and packaging: the
// paper's swap-link scheme (Section 2.3), the naive baseline, and the
// two-level chip/board designer (Section 5.2).
//
// Usage:
//
//	bfpack -spec 3,3,3                 # row partition stats
//	bfpack -spec 3,3,3 -mode nucleus   # nucleus partition (Theorem 2.1)
//	bfpack -naive 9 -rows 8            # baseline on B_9
//	bfpack -design 9 -pins 64 -side 20 # Section 5.2 board design
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"bfvlsi/internal/bitutil"
	"bfvlsi/internal/butterfly"
	"bfvlsi/internal/hierarchy"
	"bfvlsi/internal/isn"
	"bfvlsi/internal/packaging"
)

var (
	specFlag = flag.String("spec", "", "group spec for the swap-link scheme, e.g. 3,3,3")
	mode     = flag.String("mode", "row", "partition mode: row | nucleus")
	naive    = flag.Int("naive", 0, "run the naive baseline on B_n with this dimension")
	rows     = flag.Int("rows", 4, "rows per module for the naive baseline")
	design   = flag.Int("design", 0, "design a chip/board packaging for B_n with this dimension")
	pins     = flag.Int("pins", 64, "per-chip pin budget for -design")
	side     = flag.Int("side", 20, "chip side for -design")
)

func main() {
	flag.Parse()
	switch {
	case *design > 0:
		runDesign()
	case *naive > 0:
		runNaive()
	case *specFlag != "":
		runScheme()
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runScheme() {
	parts := strings.Split(*specFlag, ",")
	widths := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad spec %q: %v\n", *specFlag, err)
			os.Exit(2)
		}
		widths = append(widths, v)
	}
	spec, err := bitutil.NewGroupSpec(widths...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sb := isn.Transform(spec)
	if err := sb.VerifyAutomorphism(); err != nil {
		fmt.Fprintf(os.Stderr, "transformation broken: %v\n", err)
		os.Exit(1)
	}
	var p *packaging.Partition
	switch *mode {
	case "row":
		p = packaging.RowPartition(sb)
	case "nucleus":
		p = packaging.NucleusPartition(sb)
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	printStats(p)
	fmt.Printf("paper formula (row variant): %.4f off-links/node\n",
		packaging.GeneralAvgOffLinks(widths))
}

func runNaive() {
	bf := butterfly.New(*naive)
	p := packaging.NaiveRowPartition(bf, *rows)
	printStats(p)
}

func printStats(p *packaging.Partition) {
	st := p.Stats()
	fmt.Println(p.Desc)
	fmt.Printf("  modules:            %d\n", st.NumModules)
	fmt.Printf("  nodes/module:       %d..%d\n", st.MinNodesPerModule, st.MaxNodesPerModule)
	fmt.Printf("  cut links:          %d\n", st.TotalCutLinks)
	fmt.Printf("  max off-links:      %d per module\n", st.MaxOffLinksPerModu)
	fmt.Printf("  avg off-links/node: %.4f\n", st.AvgOffLinksPerNode)
}

func runDesign() {
	d, err := hierarchy.Design(*design, *pins, *side)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("B_%d on %d-pin chips of side %d: spec %v\n", d.N, d.MaxPins, d.ChipSide, d.Spec)
	fmt.Printf("  %d chips x %d nodes, %d off-chip links each\n",
		d.NumChips, d.NodesPerChip, d.OffChipLinks)
	fmt.Printf("  chip grid %dx%d, %d tracks/gap (optimized)\n",
		d.GridRows, d.GridCols, d.OptimizedHTracks)
	for _, L := range []int{2, 4, 8} {
		w, h := d.BoardDims(L)
		fmt.Printf("  L=%d: board %dx%d, area %d\n", L, w, h, d.BoardArea(L))
	}
	er, ec := hierarchy.NaiveChipsPaperEstimate(d.N, d.MaxPins)
	fmt.Printf("  naive baseline (paper accounting): %d rows/chip, %d chips\n", er, ec)
}
