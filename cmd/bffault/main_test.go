package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

// The flag audit: every mutually-exclusive or out-of-range combination
// must be rejected by parseOptions (main maps that to exit 2), and every
// legitimate combination must pass. Each rejected case names the flag at
// fault so the error message stays actionable.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // "" = must parse cleanly
	}{
		// Legitimate combinations of every dispatch path.
		{"defaults", nil, ""},
		{"single run with faults", []string{"-linkrate", "0.05", "-noderate", "0.01", "-transient", "3", "-repair", "40"}, ""},
		{"module kill", []string{"-killmodules", "2", "-scheme", "row"}, ""},
		{"plain sweep", []string{"-sweep", "0,0.05,0.1"}, ""},
		{"plain compare", []string{"-compare", "-kills", "0,1,2"}, ""},
		{"reliable single run", []string{"-reliable", "-timeout", "40", "-retries", "5", "-jitter", "4", "-maxtimeout", "200"}, ""},
		{"reliable sweep", []string{"-reliable", "-sweep", "0,0.1"}, ""},
		{"reliable outage sweep", []string{"-reliable", "-sweep", "0,0.1", "-outage", "50"}, ""},
		{"reliable compare", []string{"-reliable", "-compare"}, ""},
		{"adaptive single run", []string{"-adaptive", "-threshold", "3", "-probe", "12", "-maxdetours", "4", "-epoch", "24"}, ""},
		{"adaptive epoch off", []string{"-adaptive", "-epoch", "0"}, ""},
		{"adaptive sweep", []string{"-adaptive", "-sweep", "0,0.05"}, ""},
		{"adaptive compare", []string{"-adaptive", "-compare", "-kills", "0,2"}, ""},
		{"adaptive with reliable", []string{"-adaptive", "-reliable", "-timeout", "40", "-retries", "1"}, ""},
		{"drop policy", []string{"-policy", "drop"}, ""},

		// Range checks.
		{"dim too small", []string{"-n", "0"}, "-n 0"},
		{"dim too large", []string{"-n", "15"}, "-n 15"},
		{"lambda zero", []string{"-lambda", "0"}, "-lambda"},
		{"lambda above one", []string{"-lambda", "1.5"}, "-lambda"},
		{"negative warmup", []string{"-warmup", "-1"}, "-warmup"},
		{"zero cycles", []string{"-cycles", "0"}, "-cycles"},
		{"negative buffers", []string{"-buffers", "-1"}, "-buffers"},
		{"negative ttl", []string{"-ttl", "-5"}, "-ttl"},
		{"linkrate above one", []string{"-linkrate", "1.2"}, "-linkrate"},
		{"negative noderate", []string{"-noderate", "-0.1"}, "-noderate"},
		{"negative transient", []string{"-transient", "-1"}, "-transient"},
		{"zero repair", []string{"-repair", "0"}, "-repair"},
		{"negative killmodules", []string{"-killmodules", "-1"}, "-killmodules"},
		{"unknown policy", []string{"-policy", "teleport"}, "unknown policy"},
		{"unknown scheme", []string{"-scheme", "cube"}, "unknown scheme"},

		// Sweep/compare exclusivity and stray single-run flags.
		{"sweep with compare", []string{"-sweep", "0,0.1", "-compare"}, "mutually exclusive"},
		{"kills without compare", []string{"-kills", "0,1"}, "-kills set without -compare"},
		{"linkrate with sweep", []string{"-sweep", "0,0.1", "-linkrate", "0.05"}, "-linkrate"},
		{"killmodules with sweep", []string{"-sweep", "0,0.1", "-killmodules", "2"}, "-killmodules"},
		{"scheme with compare", []string{"-compare", "-scheme", "row"}, "-scheme"},
		{"transient with compare", []string{"-compare", "-transient", "3"}, "-transient"},

		// Reliability flag audit.
		{"timeout without reliable", []string{"-timeout", "40"}, "-timeout set without -reliable"},
		{"retries without reliable", []string{"-retries", "5"}, "-retries set without -reliable"},
		{"jitter without reliable", []string{"-jitter", "2"}, "-jitter set without -reliable"},
		{"maxtimeout without reliable", []string{"-maxtimeout", "100"}, "-maxtimeout set without -reliable"},
		{"outage without reliable", []string{"-outage", "50"}, "-outage set without -reliable"},
		{"two stray reliable flags", []string{"-timeout", "40", "-retries", "5"}, "-timeout, -retries"},
		{"outage without sweep", []string{"-reliable", "-outage", "50"}, "-outage only applies to a reliability sweep"},
		{"negative reliable timeout", []string{"-reliable", "-timeout", "-1"}, "-timeout -1"},
		{"timeout past horizon", []string{"-reliable", "-warmup", "10", "-cycles", "20", "-timeout", "40"}, "never fires"},
		{"negative jitter", []string{"-reliable", "-jitter", "-2"}, "-jitter -2"},
		{"negative outage", []string{"-reliable", "-sweep", "0,0.1", "-outage", "-1"}, "-outage -1"},

		// Adaptive flag audit.
		{"threshold without adaptive", []string{"-threshold", "3"}, "-threshold set without -adaptive"},
		{"probe without adaptive", []string{"-probe", "10"}, "-probe set without -adaptive"},
		{"maxdetours without adaptive", []string{"-maxdetours", "2"}, "-maxdetours set without -adaptive"},
		{"epoch without adaptive", []string{"-epoch", "20"}, "-epoch set without -adaptive"},
		{"two stray adaptive flags", []string{"-threshold", "3", "-epoch", "20"}, "-threshold, -epoch"},
		{"adaptive with explicit policy", []string{"-adaptive", "-policy", "drop"}, "-policy is ignored under -adaptive"},
		{"adaptive with explicit misroute", []string{"-adaptive", "-policy", "misroute"}, "-policy is ignored under -adaptive"},
		{"adaptive with outage", []string{"-adaptive", "-reliable", "-sweep", "0,0.1", "-outage", "50"}, "-outage and -adaptive"},
		{"negative threshold", []string{"-adaptive", "-threshold", "-1"}, "-threshold -1"},
		{"negative probe", []string{"-adaptive", "-probe", "-1"}, "-probe -1"},
		{"negative maxdetours", []string{"-adaptive", "-maxdetours", "-1"}, "-maxdetours -1"},
		{"epoch below sentinel", []string{"-adaptive", "-epoch", "-2"}, "-epoch -2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseOptions(tc.args)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("args %v rejected: %v", tc.args, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("args %v accepted, want error containing %q", tc.args, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("args %v: error %q does not mention %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

// The auto-filled configs must honor explicit overrides and leave
// dimension-derived defaults alone otherwise.
func TestConfigDefaults(t *testing.T) {
	o, err := parseOptions([]string{"-n", "6", "-reliable", "-adaptive", "-seed", "10"})
	if err != nil {
		t.Fatal(err)
	}
	rc := o.reliableConfig()
	if rc.Timeout != 48 { // DefaultConfig(6): 8n
		t.Errorf("auto timeout = %d, want 48", rc.Timeout)
	}
	if rc.Seed != 515 {
		t.Errorf("reliable seed = %d, want seed+505", rc.Seed)
	}
	ac := o.adaptiveConfig()
	if ac.ProbeInterval != 12 { // DefaultConfig(6): 2n
		t.Errorf("auto probe interval = %d, want 12", ac.ProbeInterval)
	}
	if ac.Epoch != 24 { // DefaultConfig(6): 4n
		t.Errorf("auto epoch = %d, want 24", ac.Epoch)
	}
	if ac.Seed != 616 {
		t.Errorf("adaptive seed = %d, want seed+606", ac.Seed)
	}

	o, err = parseOptions([]string{"-n", "6", "-reliable", "-timeout", "30", "-jitter", "0",
		"-adaptive", "-threshold", "5", "-epoch", "0"})
	if err != nil {
		t.Fatal(err)
	}
	rc = o.reliableConfig()
	if rc.Timeout != 30 {
		t.Errorf("explicit timeout = %d, want 30", rc.Timeout)
	}
	if rc.Jitter != 0 {
		t.Errorf("explicit jitter = %d, want 0", rc.Jitter)
	}
	ac = o.adaptiveConfig()
	if ac.Threshold != 5 {
		t.Errorf("explicit threshold = %d, want 5", ac.Threshold)
	}
	if ac.Epoch != 0 {
		t.Errorf("explicit epoch 0 (off) = %d, want 0", ac.Epoch)
	}
}

// captureStdout reroutes os.Stdout through a pipe for the duration of fn
// and returns everything fn printed. The runner functions under test
// write through package-level tabwriters bound to os.Stdout, so this is
// the only seam that sees their real output.
func captureStdout(t *testing.T, fn func()) []byte {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan []byte)
	go func() {
		b, _ := io.ReadAll(r)
		done <- b
	}()
	defer func() { os.Stdout = old }()
	fn()
	os.Stdout = old
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return <-done
}

// The sweep printers are the tool's public record: their tables land in
// docs and regression baselines, so two invocations with one seed must
// emit identical bytes. This is the cmd-level counterpart of the
// experiments' byte-identity test and the runtime net behind the
// maporder analyzer.
func TestSweepPrintersByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep runs skipped in -short mode")
	}
	base := []string{"-n", "4", "-warmup", "50", "-cycles", "200", "-seed", "3", "-sweep", "0,0.05"}
	cases := []struct {
		name string
		args []string
		run  func(*options)
	}{
		{"sweep", base, runSweep},
		{"sweep csv", append([]string{"-csv"}, base...), runSweep},
		{"reliable sweep", append([]string{"-reliable"}, base...), runReliableSweep},
		{"adaptive sweep", append([]string{"-adaptive"}, base...), runAdaptiveSweep},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			o, err := parseOptions(tc.args)
			if err != nil {
				t.Fatal(err)
			}
			first := captureStdout(t, func() { tc.run(o) })
			second := captureStdout(t, func() { tc.run(o) })
			if len(first) == 0 {
				t.Fatal("printer produced no output")
			}
			if !bytes.Equal(first, second) {
				t.Fatalf("output differs between identical runs:\nrun1 %d bytes, run2 %d bytes\n--- run1 ---\n%s\n--- run2 ---\n%s",
					len(first), len(second), first, second)
			}
		})
	}
}
