// Command bffault drives the fault-injection subsystem: single runs under
// random or module-correlated faults, link-fault-rate degradation sweeps,
// and the packaging comparison (row vs nucleus vs naive modules as
// failure domains).
//
// Usage:
//
//	bffault -n 6 -lambda 0.1 -linkrate 0.02            # 2% of links dead
//	bffault -n 6 -lambda 0.1 -noderate 0.01 -policy drop
//	bffault -n 6 -lambda 0.1 -transient 40 -repair 50  # transient faults
//	bffault -n 6 -lambda 0.1 -killmodules 2 -scheme nucleus
//	bffault -n 6 -lambda 0.1 -sweep 0,0.01,0.02,0.05,0.1
//	bffault -n 6 -lambda 0.1 -compare -kills 0,1,2,4   # packaging schemes
//	bffault ... -csv                                   # CSV instead of table
//
// With -reliable the end-to-end retransmission transport rides along:
//
//	bffault -n 6 -lambda 0.1 -linkrate 0.05 -reliable  # single run + payload stats
//	bffault -n 6 -lambda 0.1 -reliable -sweep 0,0.05,0.1
//	bffault -n 6 -lambda 0.1 -reliable -sweep 0,0.05,0.1 -outage 50
//	bffault -n 6 -lambda 0.1 -reliable -compare -kills 0,1,2
//	bffault ... -reliable -timeout 40 -retries 5 -jitter 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"bfvlsi/internal/faults"
	"bfvlsi/internal/reliable"
	"bfvlsi/internal/routing"
)

var (
	dim     = flag.Int("n", 6, "butterfly dimension")
	lambda  = flag.Float64("lambda", 0.1, "per-node injection probability")
	warmup  = flag.Int("warmup", 300, "warmup cycles")
	cycles  = flag.Int("cycles", 1000, "measured cycles")
	seed    = flag.Int64("seed", 1, "random seed (faults and traffic)")
	buffers = flag.Int("buffers", 0, "per-link buffer limit (0 = unbounded)")
	ttl     = flag.Int("ttl", 0, "packet lifetime in cycles (0 = 16n when faults are present)")
	policy  = flag.String("policy", "misroute", "dead-link policy: misroute | drop")

	linkRate  = flag.Float64("linkrate", 0, "fraction of links to fail permanently")
	nodeRate  = flag.Float64("noderate", 0, "fraction of nodes to fail permanently")
	transient = flag.Int("transient", 0, "number of random transient link faults")
	repair    = flag.Int("repair", 100, "repair delay for transient faults, cycles")

	killModules = flag.Int("killmodules", 0, "number of whole modules to fail")
	scheme      = flag.String("scheme", "nucleus", "module scheme for -killmodules: row | nucleus | naive")

	sweepRates = flag.String("sweep", "", "comma-separated link fault rates to sweep")
	compare    = flag.Bool("compare", false, "module-kill comparison across packaging schemes")
	kills      = flag.String("kills", "0,1,2,4", "comma-separated module kill counts for -compare")
	csv        = flag.Bool("csv", false, "emit CSV instead of an aligned table")

	reliableOn = flag.Bool("reliable", false, "attach the end-to-end retransmission transport")
	rtoBase    = flag.Int("timeout", 0, "base retransmission timeout in cycles (0 = 8n)")
	retries    = flag.Int("retries", 3, "retry budget per payload")
	jitter     = flag.Int("jitter", -1, "retry jitter in cycles (-1 = n)")
	maxRTO     = flag.Int("maxtimeout", 0, "cap on the exponential backoff (0 = uncapped)")
	outage     = flag.Int("outage", 0, "reliability sweep: transient outages of this many cycles instead of permanent faults")
)

func usageError(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "bffault: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bffault:", err)
	os.Exit(1)
}

func validateFlags() {
	if *dim < 1 || *dim > 14 {
		usageError("-n %d out of range [1,14]", *dim)
	}
	if *lambda <= 0 || *lambda > 1 {
		usageError("-lambda %v outside (0,1]", *lambda)
	}
	if *warmup < 0 {
		usageError("-warmup %d is negative", *warmup)
	}
	if *cycles <= 0 {
		usageError("-cycles %d must be positive", *cycles)
	}
	if *buffers < 0 {
		usageError("-buffers %d is negative", *buffers)
	}
	if *ttl < 0 {
		usageError("-ttl %d is negative", *ttl)
	}
	if *linkRate < 0 || *linkRate > 1 {
		usageError("-linkrate %v outside [0,1]", *linkRate)
	}
	if *nodeRate < 0 || *nodeRate > 1 {
		usageError("-noderate %v outside [0,1]", *nodeRate)
	}
	if *transient < 0 {
		usageError("-transient %d is negative", *transient)
	}
	if *repair <= 0 {
		usageError("-repair %d must be positive", *repair)
	}
	if *killModules < 0 {
		usageError("-killmodules %d is negative", *killModules)
	}
	validateReliableFlags()
}

// validateReliableFlags rejects nonsense reliability settings upfront: a
// reliability flag set without -reliable is a mistake the run would
// silently ignore, and a schedule the run horizon can never exercise is
// a mistake the run would silently report as perfect delivery.
func validateReliableFlags() {
	reliability := map[string]bool{
		"timeout": true, "retries": true, "jitter": true,
		"maxtimeout": true, "outage": true,
	}
	var stray []string
	flag.Visit(func(f *flag.Flag) {
		if reliability[f.Name] && !*reliableOn {
			stray = append(stray, "-"+f.Name)
		}
	})
	if len(stray) > 0 {
		usageError("%s set without -reliable", strings.Join(stray, ", "))
	}
	if !*reliableOn {
		return
	}
	if *rtoBase < 0 {
		usageError("-timeout %d is negative", *rtoBase)
	}
	if *jitter < -1 {
		usageError("-jitter %d is negative (use -1 for the default)", *jitter)
	}
	if *outage < 0 {
		usageError("-outage %d is negative", *outage)
	}
	if *outage > 0 && *sweepRates == "" {
		usageError("-outage only applies to a reliability sweep (add -sweep)")
	}
	cfg := reliableConfig()
	if err := cfg.Validate(); err != nil {
		usageError("%v", err)
	}
	if horizon := *warmup + *cycles; cfg.Timeout >= horizon {
		usageError("-timeout %d never fires within the %d-cycle run", cfg.Timeout, horizon)
	}
}

// reliableConfig builds the transport schedule from the flags, filling
// auto values from DefaultConfig for the chosen dimension.
func reliableConfig() reliable.Config {
	c := reliable.DefaultConfig(*dim)
	c.Seed = *seed + 505
	c.MaxRetries = *retries
	c.MaxTimeout = *maxRTO
	if *rtoBase > 0 {
		c.Timeout = *rtoBase
	}
	if *jitter >= 0 {
		c.Jitter = *jitter
	}
	return c
}

func parsePolicy(s string) routing.Policy {
	switch s {
	case "misroute":
		return routing.Misroute
	case "drop", "dropdead":
		return routing.DropDead
	default:
		usageError("unknown policy %q (want misroute or drop)", s)
		panic("unreachable")
	}
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			usageError("bad rate %q in list", f)
		}
		out = append(out, v)
	}
	return out
}

func parseInts(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			usageError("bad count %q in list", f)
		}
		out = append(out, v)
	}
	return out
}

func baseParams() routing.Params {
	return routing.Params{
		N: *dim, Lambda: *lambda, Warmup: *warmup, Cycles: *cycles,
		Seed: *seed, BufferLimit: *buffers,
		Policy: parsePolicy(*policy), TTL: *ttl,
	}
}

func main() {
	flag.Parse()
	validateFlags()
	switch {
	case *sweepRates != "" && *reliableOn:
		runReliableSweep()
	case *sweepRates != "":
		runSweep()
	case *compare && *reliableOn:
		runReliableCompare()
	case *compare:
		runCompare()
	default:
		runOnce()
	}
}

// findScheme returns the named packaging scheme for the current dimension.
func findScheme(name string) faults.Scheme {
	schemes, err := faults.StandardSchemes(*dim)
	if err != nil {
		fatal(err)
	}
	for _, sc := range schemes {
		if sc.Name == name {
			return sc
		}
	}
	usageError("unknown scheme %q (want row, nucleus, or naive)", name)
	panic("unreachable")
}

func runOnce() {
	plan, err := faults.NewPlan(*dim)
	if err != nil {
		fatal(err)
	}
	horizon := *warmup + *cycles
	if *linkRate > 0 {
		if _, err := plan.AddRandomLinkFaults(*linkRate, *seed+101); err != nil {
			fatal(err)
		}
	}
	if *nodeRate > 0 {
		if _, err := plan.AddRandomNodeFaults(*nodeRate, *seed+202); err != nil {
			fatal(err)
		}
	}
	if *transient > 0 {
		if err := plan.AddRandomTransientLinkFaults(*transient, horizon, *repair, *seed+303); err != nil {
			fatal(err)
		}
	}
	deadModuleNodes := 0
	if *killModules > 0 {
		sc := findScheme(*scheme)
		if *killModules > sc.NumModules {
			usageError("-killmodules %d exceeds the %d %s modules", *killModules, sc.NumModules, sc.Name)
		}
		for _, m := range faults.PickModules(sc.NumModules, *killModules, *seed+404) {
			killed, err := plan.AddModuleFault(sc.ModuleOf, m, 0, 0)
			if err != nil {
				fatal(err)
			}
			deadModuleNodes += killed
		}
	}
	p := baseParams()
	p.Faults = plan
	if p.TTL == 0 && plan.NumEvents() > 0 {
		p.TTL = faults.DefaultTTL(*dim)
	}
	var tr *reliable.Transport
	if *reliableOn {
		tr, err = reliable.New(reliableConfig())
		if err != nil {
			fatal(err)
		}
		tr.MeasureFrom = *warmup
		p.Reliable = tr
	}
	r, err := routing.Simulate(p)
	if err != nil {
		fatal(err)
	}
	plan.BeginCycle(0)
	fmt.Printf("B_%d wrapped, lambda=%.4f, policy=%v, ttl=%d, %d fault events:\n",
		*dim, *lambda, p.Policy, p.TTL, plan.NumEvents())
	fmt.Printf("  at cycle 0:   %d dead nodes, %d dead links (of %d / %d)\n",
		plan.DeadNodes(), plan.DeadLinks(), plan.Nodes(), 2*plan.Nodes())
	if deadModuleNodes > 0 {
		fmt.Printf("  module kill:  %d modules of the %s scheme (%d nodes)\n",
			*killModules, *scheme, deadModuleNodes)
	}
	fmt.Printf("  throughput:   %.4f pkts/node/cycle (%.1f%% of offered)\n",
		r.Throughput, 100*r.Throughput / *lambda)
	fmt.Printf("  avg latency:  %.2f cycles (avg hops %.2f)\n", r.AvgLatency, r.AvgHops)
	if tr != nil {
		cfg := tr.Config()
		s := tr.Stats()
		fmt.Printf("  reliability:  timeout %d, retries %d, jitter %d\n",
			cfg.Timeout, cfg.MaxRetries, cfg.Jitter)
		fmt.Printf("  accounting:   %d injected + %d retransmitted = %d delivered + %d duplicates + %d dropped + %d gave up + %d unreachable + %d backlog\n",
			r.TotalInjected, r.Retransmitted, r.TotalDelivered, r.DuplicatesDropped,
			r.Dropped, r.GaveUp, r.Unreachable, r.Backlog)
		fmt.Printf("  payloads:     %d registered = %d accepted + %d abandoned + %d pending\n",
			s.Registered, s.Accepted, s.Abandoned, s.Pending)
		fmt.Printf("  delivery lat: avg %.2f, p99 %.0f, max %d cycles (%d samples)\n",
			s.AvgLatency, tr.LatencyPercentile(0.99), s.MaxLatency, s.LatencySamples)
	} else {
		fmt.Printf("  accounting:   %d injected = %d delivered + %d dropped + %d unreachable + %d backlog\n",
			r.TotalInjected, r.TotalDelivered, r.Dropped, r.Unreachable, r.Backlog)
	}
	fmt.Printf("  misroutes:    %d (stalls %d)\n", r.Misroutes, r.Stalls)
	if err := r.CheckConservation(); err != nil {
		fatal(err)
	}
}

func runSweep() {
	pts := faults.Sweep(baseParams(), parseFloats(*sweepRates))
	if *csv {
		fmt.Println("rate,dead_links,throughput,efficiency,latency,dropped,unreachable,misroutes,backlog")
		for _, pt := range pts {
			if pt.Err != nil {
				fatal(pt.Err)
			}
			r := pt.Result
			fmt.Printf("%g,%d,%.4f,%.4f,%.2f,%d,%d,%d,%d\n",
				pt.Rate, pt.DeadLinks, r.Throughput, r.Throughput / *lambda,
				r.AvgLatency, r.Dropped, r.Unreachable, r.Misroutes, r.Backlog)
		}
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "rate\tdead\tthroughput\tefficiency\tlatency\tdropped\tunreach\tmisroutes\tbacklog\n")
	for _, pt := range pts {
		if pt.Err != nil {
			fatal(pt.Err)
		}
		r := pt.Result
		fmt.Fprintf(w, "%g\t%d\t%.4f\t%.1f%%\t%.1f\t%d\t%d\t%d\t%d\n",
			pt.Rate, pt.DeadLinks, r.Throughput, 100*r.Throughput / *lambda,
			r.AvgLatency, r.Dropped, r.Unreachable, r.Misroutes, r.Backlog)
	}
	w.Flush()
}

// runReliableSweep compares the recovery modes (policy x retransmission)
// across fault rates: permanent link faults by default, repairable
// outages of -outage cycles when set. Every point is conservation-checked
// by the sweep itself; any inconsistency aborts before a row is printed.
func runReliableSweep() {
	cfg := reliableConfig()
	modes := reliable.StandardModes()
	rates := parseFloats(*sweepRates)
	var pts []reliable.Point
	if *outage > 0 {
		pts = reliable.OutageSweep(baseParams(), cfg, modes, rates, *outage)
	} else {
		pts = reliable.Sweep(baseParams(), cfg, modes, rates)
	}
	for _, pt := range pts {
		if pt.Err != nil {
			fatal(pt.Err)
		}
	}
	if *csv {
		fmt.Println("mode,rate,dead_links,outages,goodput,efficiency,p99_latency,retransmitted,overhead,duplicates,gaveup,abandoned,pending")
		for _, pt := range pts {
			r := pt.Result
			fmt.Printf("%s,%g,%d,%d,%.4f,%.4f,%.0f,%d,%.4f,%d,%d,%d,%d\n",
				pt.Mode, pt.Rate, pt.DeadLinks, pt.Outages, pt.Goodput, pt.Goodput / *lambda,
				pt.P99Latency, r.Retransmitted, pt.Overhead,
				r.DuplicatesDropped, r.GaveUp, pt.Stats.Abandoned, pt.Stats.Pending)
		}
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "mode\trate\tdead\toutages\tgoodput\tefficiency\tp99 lat\tretx\toverhead\tdups\tgaveup\n")
	for _, pt := range pts {
		r := pt.Result
		fmt.Fprintf(w, "%s\t%g\t%d\t%d\t%.4f\t%.1f%%\t%.0f\t%d\t%.1f%%\t%d\t%d\n",
			pt.Mode, pt.Rate, pt.DeadLinks, pt.Outages, pt.Goodput, 100*pt.Goodput / *lambda,
			pt.P99Latency, r.Retransmitted, 100*pt.Overhead, r.DuplicatesDropped, r.GaveUp)
	}
	w.Flush()
	if *outage == 0 {
		fmt.Println("(permanent faults: deterministic retries retrace the same path, so retx modes mostly pay overhead; add -outage for the repairable regime)")
	}
}

// runReliableCompare is the packaging comparison with recovery in the
// loop: modules die whole under each scheme, and every recovery mode is
// measured on the same wreckage.
func runReliableCompare() {
	schemes, err := faults.StandardSchemes(*dim)
	if err != nil {
		fatal(err)
	}
	pts := reliable.ModuleKillSweep(baseParams(), reliableConfig(), reliable.StandardModes(), schemes, parseInts(*kills))
	for _, pt := range pts {
		if pt.Err != nil {
			fatal(pt.Err)
		}
	}
	if *csv {
		fmt.Println("mode,scheme,killed,dead_nodes,dead_frac,goodput,p99_latency,retransmitted,overhead,duplicates,abandoned")
		for _, pt := range pts {
			r := pt.Result
			fmt.Printf("%s,%s,%d,%d,%.4f,%.4f,%.0f,%d,%.4f,%d,%d\n",
				pt.Mode, pt.Scheme, pt.Killed, pt.DeadNodes, pt.DeadNodeFrac,
				pt.Goodput, pt.P99Latency, r.Retransmitted, pt.Overhead,
				r.DuplicatesDropped, pt.Stats.Abandoned)
		}
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "mode\tscheme\tkilled\tdead nodes\tgoodput\tp99 lat\tretx\toverhead\tdups\tabandoned\n")
	for _, pt := range pts {
		r := pt.Result
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%.4f\t%.0f\t%d\t%.1f%%\t%d\t%d\n",
			pt.Mode, pt.Scheme, pt.Killed, pt.DeadNodes, pt.Goodput,
			pt.P99Latency, r.Retransmitted, 100*pt.Overhead,
			r.DuplicatesDropped, pt.Stats.Abandoned)
	}
	w.Flush()
	fmt.Println("(same seeded module draw per kill count, shared across schemes and modes)")
}

func runCompare() {
	schemes, err := faults.StandardSchemes(*dim)
	if err != nil {
		fatal(err)
	}
	pts := faults.ModuleKillSweep(baseParams(), schemes, parseInts(*kills))
	if *csv {
		fmt.Println("scheme,killed,dead_nodes,dead_frac,throughput,latency,dropped,unreachable,backlog")
		for _, pt := range pts {
			if pt.Err != nil {
				fatal(pt.Err)
			}
			r := pt.Result
			fmt.Printf("%s,%d,%d,%.4f,%.4f,%.2f,%d,%d,%d\n",
				pt.Scheme, pt.Killed, pt.DeadNodes, pt.DeadNodeFrac,
				r.Throughput, r.AvgLatency, r.Dropped, r.Unreachable, r.Backlog)
		}
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "scheme\tkilled\tdead nodes\tdead frac\tthroughput\tlatency\tdropped\tunreach\tbacklog\n")
	for _, pt := range pts {
		if pt.Err != nil {
			fatal(pt.Err)
		}
		r := pt.Result
		fmt.Fprintf(w, "%s\t%d\t%d\t%.1f%%\t%.4f\t%.1f\t%d\t%d\t%d\n",
			pt.Scheme, pt.Killed, pt.DeadNodes, 100*pt.DeadNodeFrac,
			r.Throughput, r.AvgLatency, r.Dropped, r.Unreachable, r.Backlog)
	}
	w.Flush()
	fmt.Println("(same seeded module draw per kill count; schemes differ only in what a module is)")
}
