// Command bffault drives the fault-injection subsystem: single runs under
// random or module-correlated faults, link-fault-rate degradation sweeps,
// and the packaging comparison (row vs nucleus vs naive modules as
// failure domains).
//
// Usage:
//
//	bffault -n 6 -lambda 0.1 -linkrate 0.02            # 2% of links dead
//	bffault -n 6 -lambda 0.1 -noderate 0.01 -policy drop
//	bffault -n 6 -lambda 0.1 -transient 40 -repair 50  # transient faults
//	bffault -n 6 -lambda 0.1 -killmodules 2 -scheme nucleus
//	bffault -n 6 -lambda 0.1 -sweep 0,0.01,0.02,0.05,0.1
//	bffault -n 6 -lambda 0.1 -compare -kills 0,1,2,4   # packaging schemes
//	bffault ... -csv                                   # CSV instead of table
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"bfvlsi/internal/faults"
	"bfvlsi/internal/routing"
)

var (
	dim     = flag.Int("n", 6, "butterfly dimension")
	lambda  = flag.Float64("lambda", 0.1, "per-node injection probability")
	warmup  = flag.Int("warmup", 300, "warmup cycles")
	cycles  = flag.Int("cycles", 1000, "measured cycles")
	seed    = flag.Int64("seed", 1, "random seed (faults and traffic)")
	buffers = flag.Int("buffers", 0, "per-link buffer limit (0 = unbounded)")
	ttl     = flag.Int("ttl", 0, "packet lifetime in cycles (0 = 16n when faults are present)")
	policy  = flag.String("policy", "misroute", "dead-link policy: misroute | drop")

	linkRate  = flag.Float64("linkrate", 0, "fraction of links to fail permanently")
	nodeRate  = flag.Float64("noderate", 0, "fraction of nodes to fail permanently")
	transient = flag.Int("transient", 0, "number of random transient link faults")
	repair    = flag.Int("repair", 100, "repair delay for transient faults, cycles")

	killModules = flag.Int("killmodules", 0, "number of whole modules to fail")
	scheme      = flag.String("scheme", "nucleus", "module scheme for -killmodules: row | nucleus | naive")

	sweepRates = flag.String("sweep", "", "comma-separated link fault rates to sweep")
	compare    = flag.Bool("compare", false, "module-kill comparison across packaging schemes")
	kills      = flag.String("kills", "0,1,2,4", "comma-separated module kill counts for -compare")
	csv        = flag.Bool("csv", false, "emit CSV instead of an aligned table")
)

func usageError(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "bffault: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bffault:", err)
	os.Exit(1)
}

func validateFlags() {
	if *dim < 1 || *dim > 14 {
		usageError("-n %d out of range [1,14]", *dim)
	}
	if *lambda <= 0 || *lambda > 1 {
		usageError("-lambda %v outside (0,1]", *lambda)
	}
	if *warmup < 0 {
		usageError("-warmup %d is negative", *warmup)
	}
	if *cycles <= 0 {
		usageError("-cycles %d must be positive", *cycles)
	}
	if *buffers < 0 {
		usageError("-buffers %d is negative", *buffers)
	}
	if *ttl < 0 {
		usageError("-ttl %d is negative", *ttl)
	}
	if *linkRate < 0 || *linkRate > 1 {
		usageError("-linkrate %v outside [0,1]", *linkRate)
	}
	if *nodeRate < 0 || *nodeRate > 1 {
		usageError("-noderate %v outside [0,1]", *nodeRate)
	}
	if *transient < 0 {
		usageError("-transient %d is negative", *transient)
	}
	if *repair <= 0 {
		usageError("-repair %d must be positive", *repair)
	}
	if *killModules < 0 {
		usageError("-killmodules %d is negative", *killModules)
	}
}

func parsePolicy(s string) routing.Policy {
	switch s {
	case "misroute":
		return routing.Misroute
	case "drop", "dropdead":
		return routing.DropDead
	default:
		usageError("unknown policy %q (want misroute or drop)", s)
		panic("unreachable")
	}
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			usageError("bad rate %q in list", f)
		}
		out = append(out, v)
	}
	return out
}

func parseInts(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			usageError("bad count %q in list", f)
		}
		out = append(out, v)
	}
	return out
}

func baseParams() routing.Params {
	return routing.Params{
		N: *dim, Lambda: *lambda, Warmup: *warmup, Cycles: *cycles,
		Seed: *seed, BufferLimit: *buffers,
		Policy: parsePolicy(*policy), TTL: *ttl,
	}
}

func main() {
	flag.Parse()
	validateFlags()
	switch {
	case *sweepRates != "":
		runSweep()
	case *compare:
		runCompare()
	default:
		runOnce()
	}
}

// findScheme returns the named packaging scheme for the current dimension.
func findScheme(name string) faults.Scheme {
	schemes, err := faults.StandardSchemes(*dim)
	if err != nil {
		fatal(err)
	}
	for _, sc := range schemes {
		if sc.Name == name {
			return sc
		}
	}
	usageError("unknown scheme %q (want row, nucleus, or naive)", name)
	panic("unreachable")
}

func runOnce() {
	plan, err := faults.NewPlan(*dim)
	if err != nil {
		fatal(err)
	}
	horizon := *warmup + *cycles
	if *linkRate > 0 {
		if _, err := plan.AddRandomLinkFaults(*linkRate, *seed+101); err != nil {
			fatal(err)
		}
	}
	if *nodeRate > 0 {
		if _, err := plan.AddRandomNodeFaults(*nodeRate, *seed+202); err != nil {
			fatal(err)
		}
	}
	if *transient > 0 {
		if err := plan.AddRandomTransientLinkFaults(*transient, horizon, *repair, *seed+303); err != nil {
			fatal(err)
		}
	}
	deadModuleNodes := 0
	if *killModules > 0 {
		sc := findScheme(*scheme)
		if *killModules > sc.NumModules {
			usageError("-killmodules %d exceeds the %d %s modules", *killModules, sc.NumModules, sc.Name)
		}
		for _, m := range faults.PickModules(sc.NumModules, *killModules, *seed+404) {
			killed, err := plan.AddModuleFault(sc.ModuleOf, m, 0, 0)
			if err != nil {
				fatal(err)
			}
			deadModuleNodes += killed
		}
	}
	p := baseParams()
	p.Faults = plan
	if p.TTL == 0 && plan.NumEvents() > 0 {
		p.TTL = faults.DefaultTTL(*dim)
	}
	r, err := routing.Simulate(p)
	if err != nil {
		fatal(err)
	}
	plan.BeginCycle(0)
	fmt.Printf("B_%d wrapped, lambda=%.4f, policy=%v, ttl=%d, %d fault events:\n",
		*dim, *lambda, p.Policy, p.TTL, plan.NumEvents())
	fmt.Printf("  at cycle 0:   %d dead nodes, %d dead links (of %d / %d)\n",
		plan.DeadNodes(), plan.DeadLinks(), plan.Nodes(), 2*plan.Nodes())
	if deadModuleNodes > 0 {
		fmt.Printf("  module kill:  %d modules of the %s scheme (%d nodes)\n",
			*killModules, *scheme, deadModuleNodes)
	}
	fmt.Printf("  throughput:   %.4f pkts/node/cycle (%.1f%% of offered)\n",
		r.Throughput, 100*r.Throughput / *lambda)
	fmt.Printf("  avg latency:  %.2f cycles (avg hops %.2f)\n", r.AvgLatency, r.AvgHops)
	fmt.Printf("  accounting:   %d injected = %d delivered + %d dropped + %d unreachable + %d backlog\n",
		r.TotalInjected, r.TotalDelivered, r.Dropped, r.Unreachable, r.Backlog)
	fmt.Printf("  misroutes:    %d (stalls %d)\n", r.Misroutes, r.Stalls)
	if err := r.CheckConservation(); err != nil {
		fatal(err)
	}
}

func runSweep() {
	pts := faults.Sweep(baseParams(), parseFloats(*sweepRates))
	if *csv {
		fmt.Println("rate,dead_links,throughput,efficiency,latency,dropped,unreachable,misroutes,backlog")
		for _, pt := range pts {
			if pt.Err != nil {
				fatal(pt.Err)
			}
			r := pt.Result
			fmt.Printf("%g,%d,%.4f,%.4f,%.2f,%d,%d,%d,%d\n",
				pt.Rate, pt.DeadLinks, r.Throughput, r.Throughput / *lambda,
				r.AvgLatency, r.Dropped, r.Unreachable, r.Misroutes, r.Backlog)
		}
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "rate\tdead\tthroughput\tefficiency\tlatency\tdropped\tunreach\tmisroutes\tbacklog\n")
	for _, pt := range pts {
		if pt.Err != nil {
			fatal(pt.Err)
		}
		r := pt.Result
		fmt.Fprintf(w, "%g\t%d\t%.4f\t%.1f%%\t%.1f\t%d\t%d\t%d\t%d\n",
			pt.Rate, pt.DeadLinks, r.Throughput, 100*r.Throughput / *lambda,
			r.AvgLatency, r.Dropped, r.Unreachable, r.Misroutes, r.Backlog)
	}
	w.Flush()
}

func runCompare() {
	schemes, err := faults.StandardSchemes(*dim)
	if err != nil {
		fatal(err)
	}
	pts := faults.ModuleKillSweep(baseParams(), schemes, parseInts(*kills))
	if *csv {
		fmt.Println("scheme,killed,dead_nodes,dead_frac,throughput,latency,dropped,unreachable,backlog")
		for _, pt := range pts {
			if pt.Err != nil {
				fatal(pt.Err)
			}
			r := pt.Result
			fmt.Printf("%s,%d,%d,%.4f,%.4f,%.2f,%d,%d,%d\n",
				pt.Scheme, pt.Killed, pt.DeadNodes, pt.DeadNodeFrac,
				r.Throughput, r.AvgLatency, r.Dropped, r.Unreachable, r.Backlog)
		}
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "scheme\tkilled\tdead nodes\tdead frac\tthroughput\tlatency\tdropped\tunreach\tbacklog\n")
	for _, pt := range pts {
		if pt.Err != nil {
			fatal(pt.Err)
		}
		r := pt.Result
		fmt.Fprintf(w, "%s\t%d\t%d\t%.1f%%\t%.4f\t%.1f\t%d\t%d\t%d\n",
			pt.Scheme, pt.Killed, pt.DeadNodes, 100*pt.DeadNodeFrac,
			r.Throughput, r.AvgLatency, r.Dropped, r.Unreachable, r.Backlog)
	}
	w.Flush()
	fmt.Println("(same seeded module draw per kill count; schemes differ only in what a module is)")
}
