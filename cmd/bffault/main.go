// Command bffault drives the fault-injection subsystem: single runs under
// random or module-correlated faults, link-fault-rate degradation sweeps,
// and the packaging comparison (row vs nucleus vs naive modules as
// failure domains).
//
// Usage:
//
//	bffault -n 6 -lambda 0.1 -linkrate 0.02            # 2% of links dead
//	bffault -n 6 -lambda 0.1 -noderate 0.01 -policy drop
//	bffault -n 6 -lambda 0.1 -transient 40 -repair 50  # transient faults
//	bffault -n 6 -lambda 0.1 -killmodules 2 -scheme nucleus
//	bffault -n 6 -lambda 0.1 -sweep 0,0.01,0.02,0.05,0.1
//	bffault -n 6 -lambda 0.1 -compare -kills 0,1,2,4   # packaging schemes
//	bffault ... -csv                                   # CSV instead of table
//
// With -reliable the end-to-end retransmission transport rides along:
//
//	bffault -n 6 -lambda 0.1 -linkrate 0.05 -reliable  # single run + payload stats
//	bffault -n 6 -lambda 0.1 -reliable -sweep 0,0.05,0.1
//	bffault -n 6 -lambda 0.1 -reliable -sweep 0,0.05,0.1 -outage 50
//	bffault -n 6 -lambda 0.1 -reliable -compare -kills 0,1,2
//	bffault ... -reliable -timeout 40 -retries 5 -jitter 4
//
// With -adaptive the online fault-aware router replaces the static
// policy: link health is learned through circuit breakers, packets take
// bounded dimension-shift detours around permanent holes, and epoch
// link-state dissemination excises dead destinations. Sweeps and
// comparisons then measure the E23 recovery modes (drop / misroute /
// adaptive / adaptive+retx):
//
//	bffault -n 6 -lambda 0.06 -killmodules 2 -adaptive # single adaptive run
//	bffault -n 6 -lambda 0.06 -adaptive -sweep 0,0.02,0.05
//	bffault -n 6 -lambda 0.06 -adaptive -compare -kills 0,2,4
//	bffault ... -adaptive -threshold 3 -probe 12 -maxdetours 4 -epoch 24
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"bfvlsi/internal/adaptive"
	"bfvlsi/internal/faults"
	"bfvlsi/internal/reliable"
	"bfvlsi/internal/routing"
)

// options carries every flag value plus the FlagSet they were parsed
// from, so validation can distinguish explicitly-set flags from
// defaults. Parsing and validation are pure (no exits, no prints): main
// turns a validation error into the exit-2 usage path, and the tests
// drive the same code with table argv lists.
type options struct {
	set *flag.FlagSet

	dim     int
	lambda  float64
	warmup  int
	cycles  int
	seed    int64
	buffers int
	ttl     int
	policy  string

	linkRate  float64
	nodeRate  float64
	transient int
	repair    int

	killModules int
	scheme      string

	sweepRates string
	compare    bool
	kills      string
	csv        bool

	reliableOn bool
	rtoBase    int
	retries    int
	jitter     int
	maxRTO     int
	outage     int

	adaptiveOn bool
	threshold  int
	probeIval  int
	maxDetours int
	epoch      int
}

// newOptions registers every flag on the given set.
func newOptions(set *flag.FlagSet) *options {
	o := &options{set: set}
	set.IntVar(&o.dim, "n", 6, "butterfly dimension")
	set.Float64Var(&o.lambda, "lambda", 0.1, "per-node injection probability")
	set.IntVar(&o.warmup, "warmup", 300, "warmup cycles")
	set.IntVar(&o.cycles, "cycles", 1000, "measured cycles")
	set.Int64Var(&o.seed, "seed", 1, "random seed (faults and traffic)")
	set.IntVar(&o.buffers, "buffers", 0, "per-link buffer limit (0 = unbounded)")
	set.IntVar(&o.ttl, "ttl", 0, "packet lifetime in cycles (0 = 16n when faults are present)")
	set.StringVar(&o.policy, "policy", "misroute", "dead-link policy: misroute | drop")

	set.Float64Var(&o.linkRate, "linkrate", 0, "fraction of links to fail permanently")
	set.Float64Var(&o.nodeRate, "noderate", 0, "fraction of nodes to fail permanently")
	set.IntVar(&o.transient, "transient", 0, "number of random transient link faults")
	set.IntVar(&o.repair, "repair", 100, "repair delay for transient faults, cycles")

	set.IntVar(&o.killModules, "killmodules", 0, "number of whole modules to fail")
	set.StringVar(&o.scheme, "scheme", "nucleus", "module scheme for -killmodules: row | nucleus | naive")

	set.StringVar(&o.sweepRates, "sweep", "", "comma-separated link fault rates to sweep")
	set.BoolVar(&o.compare, "compare", false, "module-kill comparison across packaging schemes")
	set.StringVar(&o.kills, "kills", "0,1,2,4", "comma-separated module kill counts for -compare")
	set.BoolVar(&o.csv, "csv", false, "emit CSV instead of an aligned table")

	set.BoolVar(&o.reliableOn, "reliable", false, "attach the end-to-end retransmission transport")
	set.IntVar(&o.rtoBase, "timeout", 0, "base retransmission timeout in cycles (0 = 8n)")
	set.IntVar(&o.retries, "retries", 3, "retry budget per payload")
	set.IntVar(&o.jitter, "jitter", -1, "retry jitter in cycles (-1 = n)")
	set.IntVar(&o.maxRTO, "maxtimeout", 0, "cap on the exponential backoff (0 = uncapped)")
	set.IntVar(&o.outage, "outage", 0, "reliability sweep: transient outages of this many cycles instead of permanent faults")

	set.BoolVar(&o.adaptiveOn, "adaptive", false, "replace the static policy with the online fault-aware adaptive router")
	set.IntVar(&o.threshold, "threshold", 0, "consecutive failures that open a link breaker (0 = 2)")
	set.IntVar(&o.probeIval, "probe", 0, "probe interval for open breakers, cycles (0 = 2n)")
	set.IntVar(&o.maxDetours, "maxdetours", 0, "deliberate detour budget per packet (0 = 3)")
	set.IntVar(&o.epoch, "epoch", -1, "link-state dissemination period, cycles (-1 = 4n, 0 = off)")
	return o
}

// parseOptions parses argv and validates the combination. It never exits
// or prints beyond the FlagSet's own output.
func parseOptions(args []string) (*options, error) {
	set := flag.NewFlagSet("bffault", flag.ContinueOnError)
	o := newOptions(set)
	if err := set.Parse(args); err != nil {
		return nil, err
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	return o, nil
}

// explicit returns the set of flag names the command line actually
// mentioned.
func (o *options) explicit() map[string]bool {
	seen := make(map[string]bool)
	o.set.Visit(func(f *flag.Flag) { seen[f.Name] = true })
	return seen
}

// validate audits ranges and mutually exclusive mode/flag combinations.
// Every rejected combination here exits 2 via main: a flag the selected
// mode would silently ignore is a mistake, not a preference.
func (o *options) validate() error {
	if o.dim < 1 || o.dim > 14 {
		return fmt.Errorf("-n %d out of range [1,14]", o.dim)
	}
	if o.lambda <= 0 || o.lambda > 1 {
		return fmt.Errorf("-lambda %v outside (0,1]", o.lambda)
	}
	if o.warmup < 0 {
		return fmt.Errorf("-warmup %d is negative", o.warmup)
	}
	if o.cycles <= 0 {
		return fmt.Errorf("-cycles %d must be positive", o.cycles)
	}
	if o.buffers < 0 {
		return fmt.Errorf("-buffers %d is negative", o.buffers)
	}
	if o.ttl < 0 {
		return fmt.Errorf("-ttl %d is negative", o.ttl)
	}
	if o.linkRate < 0 || o.linkRate > 1 {
		return fmt.Errorf("-linkrate %v outside [0,1]", o.linkRate)
	}
	if o.nodeRate < 0 || o.nodeRate > 1 {
		return fmt.Errorf("-noderate %v outside [0,1]", o.nodeRate)
	}
	if o.transient < 0 {
		return fmt.Errorf("-transient %d is negative", o.transient)
	}
	if o.repair <= 0 {
		return fmt.Errorf("-repair %d must be positive", o.repair)
	}
	if o.killModules < 0 {
		return fmt.Errorf("-killmodules %d is negative", o.killModules)
	}
	if _, err := parsePolicy(o.policy); err != nil {
		return err
	}
	switch o.scheme {
	case "row", "nucleus", "naive":
	default:
		return fmt.Errorf("unknown scheme %q (want row, nucleus, or naive)", o.scheme)
	}
	seen := o.explicit()
	if o.sweepRates != "" && o.compare {
		return fmt.Errorf("-sweep and -compare are mutually exclusive")
	}
	if seen["kills"] && !o.compare {
		return fmt.Errorf("-kills set without -compare")
	}
	if o.sweepRates != "" || o.compare {
		// Sweeps and comparisons build their own fault plans: a
		// single-run fault flag would be silently ignored.
		var stray []string
		for _, f := range []string{"linkrate", "noderate", "transient", "repair", "killmodules", "scheme"} {
			if seen[f] {
				stray = append(stray, "-"+f)
			}
		}
		if len(stray) > 0 {
			mode := "-sweep"
			if o.compare {
				mode = "-compare"
			}
			return fmt.Errorf("%s set with %s (single-run fault flags are ignored by sweeps)", strings.Join(stray, ", "), mode)
		}
	}
	if err := o.validateReliable(seen); err != nil {
		return err
	}
	return o.validateAdaptive(seen)
}

// validateReliable rejects nonsense reliability settings upfront: a
// reliability flag set without -reliable is a mistake the run would
// silently ignore, and a schedule the run horizon can never exercise is
// a mistake the run would silently report as perfect delivery.
func (o *options) validateReliable(seen map[string]bool) error {
	var stray []string
	for _, f := range []string{"timeout", "retries", "jitter", "maxtimeout", "outage"} {
		if seen[f] && !o.reliableOn {
			stray = append(stray, "-"+f)
		}
	}
	if len(stray) > 0 {
		return fmt.Errorf("%s set without -reliable", strings.Join(stray, ", "))
	}
	if !o.reliableOn {
		return nil
	}
	if o.rtoBase < 0 {
		return fmt.Errorf("-timeout %d is negative", o.rtoBase)
	}
	if o.jitter < -1 {
		return fmt.Errorf("-jitter %d is negative (use -1 for the default)", o.jitter)
	}
	if o.outage < 0 {
		return fmt.Errorf("-outage %d is negative", o.outage)
	}
	if o.outage > 0 && o.sweepRates == "" {
		return fmt.Errorf("-outage only applies to a reliability sweep (add -sweep)")
	}
	if o.outage > 0 && o.adaptiveOn {
		return fmt.Errorf("-outage and -adaptive are mutually exclusive (the adaptive sweep measures permanent faults)")
	}
	cfg := o.reliableConfig()
	if err := cfg.Validate(); err != nil {
		return err
	}
	if horizon := o.warmup + o.cycles; cfg.Timeout >= horizon {
		return fmt.Errorf("-timeout %d never fires within the %d-cycle run", cfg.Timeout, horizon)
	}
	return nil
}

// validateAdaptive rejects adaptive tuning without -adaptive and
// combinations the adaptive mode would silently override.
func (o *options) validateAdaptive(seen map[string]bool) error {
	var stray []string
	for _, f := range []string{"threshold", "probe", "maxdetours", "epoch"} {
		if seen[f] && !o.adaptiveOn {
			stray = append(stray, "-"+f)
		}
	}
	if len(stray) > 0 {
		return fmt.Errorf("%s set without -adaptive", strings.Join(stray, ", "))
	}
	if !o.adaptiveOn {
		return nil
	}
	if seen["policy"] {
		return fmt.Errorf("-policy is ignored under -adaptive (the router replaces the static policy)")
	}
	if o.threshold < 0 {
		return fmt.Errorf("-threshold %d is negative", o.threshold)
	}
	if o.probeIval < 0 {
		return fmt.Errorf("-probe %d is negative", o.probeIval)
	}
	if o.maxDetours < 0 {
		return fmt.Errorf("-maxdetours %d is negative", o.maxDetours)
	}
	if o.epoch < -1 {
		return fmt.Errorf("-epoch %d is negative (use -1 for the default, 0 to disable)", o.epoch)
	}
	return nil
}

// reliableConfig builds the transport schedule from the flags, filling
// auto values from DefaultConfig for the chosen dimension.
func (o *options) reliableConfig() reliable.Config {
	c := reliable.DefaultConfig(o.dim)
	c.Seed = o.seed + 505
	c.MaxRetries = o.retries
	c.MaxTimeout = o.maxRTO
	if o.rtoBase > 0 {
		c.Timeout = o.rtoBase
	}
	if o.jitter >= 0 {
		c.Jitter = o.jitter
	}
	return c
}

// adaptiveConfig builds the router tuning from the flags, filling auto
// values from adaptive.DefaultConfig for the chosen dimension.
func (o *options) adaptiveConfig() adaptive.Config {
	c := adaptive.DefaultConfig(o.dim)
	c.Seed = o.seed + 606
	if o.threshold > 0 {
		c.Threshold = o.threshold
	}
	if o.probeIval > 0 {
		c.ProbeInterval = o.probeIval
	}
	if o.maxDetours > 0 {
		c.MaxDetours = o.maxDetours
	}
	if o.epoch >= 0 {
		c.Epoch = o.epoch
	}
	return c
}

func (o *options) baseParams() routing.Params {
	pol, err := parsePolicy(o.policy)
	if err != nil {
		fatal(err)
	}
	return routing.Params{
		N: o.dim, Lambda: o.lambda, Warmup: o.warmup, Cycles: o.cycles,
		Seed: o.seed, BufferLimit: o.buffers,
		Policy: pol, TTL: o.ttl,
	}
}

func usageError(set *flag.FlagSet, err error) {
	fmt.Fprintln(os.Stderr, "bffault:", err)
	set.Usage()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bffault:", err)
	os.Exit(1)
}

func parsePolicy(s string) (routing.Policy, error) {
	switch s {
	case "misroute":
		return routing.Misroute, nil
	case "drop", "dropdead":
		return routing.DropDead, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (want misroute or drop)", s)
	}
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad rate %q in list", f)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad count %q in list", f)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	set := flag.NewFlagSet("bffault", flag.ExitOnError)
	o := newOptions(set)
	set.Parse(os.Args[1:])
	if err := o.validate(); err != nil {
		usageError(set, err)
	}
	switch {
	case o.sweepRates != "" && o.adaptiveOn:
		runAdaptiveSweep(o)
	case o.sweepRates != "" && o.reliableOn:
		runReliableSweep(o)
	case o.sweepRates != "":
		runSweep(o)
	case o.compare && o.adaptiveOn:
		runAdaptiveCompare(o)
	case o.compare && o.reliableOn:
		runReliableCompare(o)
	case o.compare:
		runCompare(o)
	default:
		runOnce(o)
	}
}

// findScheme returns the named packaging scheme for the current dimension.
func findScheme(o *options) faults.Scheme {
	schemes, err := faults.StandardSchemes(o.dim)
	if err != nil {
		fatal(err)
	}
	for _, sc := range schemes {
		if sc.Name == o.scheme {
			return sc
		}
	}
	fatal(fmt.Errorf("unknown scheme %q", o.scheme))
	panic("unreachable")
}

func runOnce(o *options) {
	plan, err := faults.NewPlan(o.dim)
	if err != nil {
		fatal(err)
	}
	horizon := o.warmup + o.cycles
	if o.linkRate > 0 {
		if _, err := plan.AddRandomLinkFaults(o.linkRate, o.seed+101); err != nil {
			fatal(err)
		}
	}
	if o.nodeRate > 0 {
		if _, err := plan.AddRandomNodeFaults(o.nodeRate, o.seed+202); err != nil {
			fatal(err)
		}
	}
	if o.transient > 0 {
		if err := plan.AddRandomTransientLinkFaults(o.transient, horizon, o.repair, o.seed+303); err != nil {
			fatal(err)
		}
	}
	deadModuleNodes := 0
	if o.killModules > 0 {
		sc := findScheme(o)
		if o.killModules > sc.NumModules {
			fatal(fmt.Errorf("-killmodules %d exceeds the %d %s modules", o.killModules, sc.NumModules, sc.Name))
		}
		for _, m := range faults.PickModules(sc.NumModules, o.killModules, o.seed+404) {
			killed, err := plan.AddModuleFault(sc.ModuleOf, m, 0, 0)
			if err != nil {
				fatal(err)
			}
			deadModuleNodes += killed
		}
	}
	p := o.baseParams()
	p.Faults = plan
	if p.TTL == 0 && plan.NumEvents() > 0 {
		p.TTL = faults.DefaultTTL(o.dim)
	}
	var rt *adaptive.Router
	if o.adaptiveOn {
		rt, err = adaptive.New(o.adaptiveConfig())
		if err != nil {
			fatal(err)
		}
		p.Adaptive = rt
	}
	var tr *reliable.Transport
	if o.reliableOn {
		tr, err = reliable.New(o.reliableConfig())
		if err != nil {
			fatal(err)
		}
		tr.MeasureFrom = o.warmup
		p.Reliable = tr
	}
	r, err := routing.Simulate(p)
	if err != nil {
		fatal(err)
	}
	plan.BeginCycle(0)
	router := "policy " + o.policy
	if o.adaptiveOn {
		router = "adaptive router"
	}
	fmt.Printf("B_%d wrapped, lambda=%.4f, %s, ttl=%d, %d fault events:\n",
		o.dim, o.lambda, router, p.TTL, plan.NumEvents())
	fmt.Printf("  at cycle 0:   %d dead nodes, %d dead links (of %d / %d)\n",
		plan.DeadNodes(), plan.DeadLinks(), plan.Nodes(), 2*plan.Nodes())
	if deadModuleNodes > 0 {
		fmt.Printf("  module kill:  %d modules of the %s scheme (%d nodes)\n",
			o.killModules, o.scheme, deadModuleNodes)
	}
	fmt.Printf("  throughput:   %.4f pkts/node/cycle (%.1f%% of offered)\n",
		r.Throughput, 100*r.Throughput/o.lambda)
	fmt.Printf("  avg latency:  %.2f cycles (avg hops %.2f)\n", r.AvgLatency, r.AvgHops)
	if tr != nil {
		cfg := tr.Config()
		s := tr.Stats()
		fmt.Printf("  reliability:  timeout %d, retries %d, jitter %d\n",
			cfg.Timeout, cfg.MaxRetries, cfg.Jitter)
		fmt.Printf("  accounting:   %d injected + %d retransmitted = %d delivered + %d duplicates + %d dropped + %d gave up + %d unreachable + %d backlog\n",
			r.TotalInjected, r.Retransmitted, r.TotalDelivered, r.DuplicatesDropped,
			r.Dropped, r.GaveUp, r.Unreachable, r.Backlog)
		fmt.Printf("  payloads:     %d registered = %d accepted + %d abandoned + %d pending\n",
			s.Registered, s.Accepted, s.Abandoned, s.Pending)
		fmt.Printf("  delivery lat: avg %.2f, p99 %.0f, max %d cycles (%d samples)\n",
			s.AvgLatency, tr.LatencyPercentile(0.99), s.MaxLatency, s.LatencySamples)
	} else {
		fmt.Printf("  accounting:   %d injected = %d delivered + %d dropped + %d unreachable + %d backlog\n",
			r.TotalInjected, r.TotalDelivered, r.Dropped, r.Unreachable, r.Backlog)
	}
	if rt != nil {
		s := rt.Stats()
		fmt.Printf("  detection:    %d breakers opened, %d re-closed, %d probes (%d alive), %d epochs, %d open at end\n",
			s.Opened, s.Reclosed, s.Probes, s.ProbesAlive, s.Epochs, s.OpenAtEnd)
		fmt.Printf("  rerouting:    %d detours, %d queue re-plans\n", r.Detours, r.Reroutes)
		fmt.Printf("  unreachable:  %d dead dest + %d cut dest + %d detected by epoch map\n",
			r.UnreachableDead, r.UnreachableCut, r.UnreachableDetected)
	} else {
		fmt.Printf("  misroutes:    %d (stalls %d)\n", r.Misroutes, r.Stalls)
	}
	if err := r.CheckConservation(); err != nil {
		fatal(err)
	}
}

func runSweep(o *options) {
	rates, err := parseFloats(o.sweepRates)
	if err != nil {
		fatal(err)
	}
	pts := faults.Sweep(o.baseParams(), rates)
	if o.csv {
		fmt.Println("rate,dead_links,throughput,efficiency,latency,dropped,unreachable,misroutes,backlog")
		for _, pt := range pts {
			if pt.Err != nil {
				fatal(pt.Err)
			}
			r := pt.Result
			fmt.Printf("%g,%d,%.4f,%.4f,%.2f,%d,%d,%d,%d\n",
				pt.Rate, pt.DeadLinks, r.Throughput, r.Throughput/o.lambda,
				r.AvgLatency, r.Dropped, r.Unreachable, r.Misroutes, r.Backlog)
		}
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "rate\tdead\tthroughput\tefficiency\tlatency\tdropped\tunreach\tmisroutes\tbacklog\n")
	for _, pt := range pts {
		if pt.Err != nil {
			fatal(pt.Err)
		}
		r := pt.Result
		fmt.Fprintf(w, "%g\t%d\t%.4f\t%.1f%%\t%.1f\t%d\t%d\t%d\t%d\n",
			pt.Rate, pt.DeadLinks, r.Throughput, 100*r.Throughput/o.lambda,
			r.AvgLatency, r.Dropped, r.Unreachable, r.Misroutes, r.Backlog)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
}

// runReliableSweep compares the recovery modes (policy x retransmission)
// across fault rates: permanent link faults by default, repairable
// outages of -outage cycles when set. Every point is conservation-checked
// by the sweep itself; any inconsistency aborts before a row is printed.
func runReliableSweep(o *options) {
	cfg := o.reliableConfig()
	modes := reliable.StandardModes()
	rates, err := parseFloats(o.sweepRates)
	if err != nil {
		fatal(err)
	}
	var pts []reliable.Point
	if o.outage > 0 {
		pts = reliable.OutageSweep(o.baseParams(), cfg, modes, rates, o.outage)
	} else {
		pts = reliable.Sweep(o.baseParams(), cfg, modes, rates)
	}
	for _, pt := range pts {
		if pt.Err != nil {
			fatal(pt.Err)
		}
	}
	if o.csv {
		fmt.Println("mode,rate,dead_links,outages,goodput,efficiency,p99_latency,retransmitted,overhead,duplicates,gaveup,abandoned,pending")
		for _, pt := range pts {
			r := pt.Result
			fmt.Printf("%s,%g,%d,%d,%.4f,%.4f,%.0f,%d,%.4f,%d,%d,%d,%d\n",
				pt.Mode, pt.Rate, pt.DeadLinks, pt.Outages, pt.Goodput, pt.Goodput/o.lambda,
				pt.P99Latency, r.Retransmitted, pt.Overhead,
				r.DuplicatesDropped, r.GaveUp, pt.Stats.Abandoned, pt.Stats.Pending)
		}
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "mode\trate\tdead\toutages\tgoodput\tefficiency\tp99 lat\tretx\toverhead\tdups\tgaveup\n")
	for _, pt := range pts {
		r := pt.Result
		fmt.Fprintf(w, "%s\t%g\t%d\t%d\t%.4f\t%.1f%%\t%.0f\t%d\t%.1f%%\t%d\t%d\n",
			pt.Mode, pt.Rate, pt.DeadLinks, pt.Outages, pt.Goodput, 100*pt.Goodput/o.lambda,
			pt.P99Latency, r.Retransmitted, 100*pt.Overhead, r.DuplicatesDropped, r.GaveUp)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	if o.outage == 0 {
		fmt.Println("(permanent faults: deterministic retries retrace the same path, so retx modes mostly pay overhead; add -outage for the repairable regime, or -adaptive for routes that change)")
	}
}

// runReliableCompare is the packaging comparison with recovery in the
// loop: modules die whole under each scheme, and every recovery mode is
// measured on the same wreckage.
func runReliableCompare(o *options) {
	schemes, err := faults.StandardSchemes(o.dim)
	if err != nil {
		fatal(err)
	}
	killCounts, err := parseInts(o.kills)
	if err != nil {
		fatal(err)
	}
	pts := reliable.ModuleKillSweep(o.baseParams(), o.reliableConfig(), reliable.StandardModes(), schemes, killCounts)
	for _, pt := range pts {
		if pt.Err != nil {
			fatal(pt.Err)
		}
	}
	if o.csv {
		fmt.Println("mode,scheme,killed,dead_nodes,dead_frac,goodput,p99_latency,retransmitted,overhead,duplicates,abandoned")
		for _, pt := range pts {
			r := pt.Result
			fmt.Printf("%s,%s,%d,%d,%.4f,%.4f,%.0f,%d,%.4f,%d,%d\n",
				pt.Mode, pt.Scheme, pt.Killed, pt.DeadNodes, pt.DeadNodeFrac,
				pt.Goodput, pt.P99Latency, r.Retransmitted, pt.Overhead,
				r.DuplicatesDropped, pt.Stats.Abandoned)
		}
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "mode\tscheme\tkilled\tdead nodes\tgoodput\tp99 lat\tretx\toverhead\tdups\tabandoned\n")
	for _, pt := range pts {
		r := pt.Result
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%.4f\t%.0f\t%d\t%.1f%%\t%d\t%d\n",
			pt.Mode, pt.Scheme, pt.Killed, pt.DeadNodes, pt.Goodput,
			pt.P99Latency, r.Retransmitted, 100*pt.Overhead,
			r.DuplicatesDropped, pt.Stats.Abandoned)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	fmt.Println("(same seeded module draw per kill count, shared across schemes and modes)")
}

func runCompare(o *options) {
	schemes, err := faults.StandardSchemes(o.dim)
	if err != nil {
		fatal(err)
	}
	killCounts, err := parseInts(o.kills)
	if err != nil {
		fatal(err)
	}
	pts := faults.ModuleKillSweep(o.baseParams(), schemes, killCounts)
	if o.csv {
		fmt.Println("scheme,killed,dead_nodes,dead_frac,throughput,latency,dropped,unreachable,backlog")
		for _, pt := range pts {
			if pt.Err != nil {
				fatal(pt.Err)
			}
			r := pt.Result
			fmt.Printf("%s,%d,%d,%.4f,%.4f,%.2f,%d,%d,%d\n",
				pt.Scheme, pt.Killed, pt.DeadNodes, pt.DeadNodeFrac,
				r.Throughput, r.AvgLatency, r.Dropped, r.Unreachable, r.Backlog)
		}
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "scheme\tkilled\tdead nodes\tdead frac\tthroughput\tlatency\tdropped\tunreach\tbacklog\n")
	for _, pt := range pts {
		if pt.Err != nil {
			fatal(pt.Err)
		}
		r := pt.Result
		fmt.Fprintf(w, "%s\t%d\t%d\t%.1f%%\t%.4f\t%.1f\t%d\t%d\t%d\n",
			pt.Scheme, pt.Killed, pt.DeadNodes, 100*pt.DeadNodeFrac,
			r.Throughput, r.AvgLatency, r.Dropped, r.Unreachable, r.Backlog)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	fmt.Println("(same seeded module draw per kill count; schemes differ only in what a module is)")
}

// runAdaptiveSweep compares the E23 recovery modes (drop / misroute /
// adaptive / adaptive+retx) across permanent link fault rates.
func runAdaptiveSweep(o *options) {
	rates, err := parseFloats(o.sweepRates)
	if err != nil {
		fatal(err)
	}
	pts := adaptive.Sweep(o.baseParams(), o.adaptiveConfig(), o.reliableConfig(), adaptive.StandardModes(), rates)
	for _, pt := range pts {
		if pt.Err != nil {
			fatal(pt.Err)
		}
	}
	if o.csv {
		fmt.Println("mode,rate,dead_links,goodput,efficiency,detours,reroutes,unreachable_detected,overhead,opened,reclosed")
		for _, pt := range pts {
			r := pt.Result
			fmt.Printf("%s,%g,%d,%.4f,%.4f,%d,%d,%d,%.4f,%d,%d\n",
				pt.Mode, pt.Rate, pt.DeadLinks, pt.Goodput, pt.Goodput/o.lambda,
				r.Detours, r.Reroutes, r.UnreachableDetected, pt.Overhead,
				pt.Router.Opened, pt.Router.Reclosed)
		}
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "mode\trate\tdead\tgoodput\tefficiency\tdetours\treplans\tdetected\toverhead\tbreakers\n")
	for _, pt := range pts {
		r := pt.Result
		fmt.Fprintf(w, "%s\t%g\t%d\t%.4f\t%.1f%%\t%d\t%d\t%d\t%.1f%%\t%d\n",
			pt.Mode, pt.Rate, pt.DeadLinks, pt.Goodput, 100*pt.Goodput/o.lambda,
			r.Detours, r.Reroutes, r.UnreachableDetected, 100*pt.Overhead, pt.Router.Opened)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	fmt.Println("(adaptive detours change the physical path each wrap-around pass - the recovery retries alone cannot buy)")
}

// runAdaptiveCompare is experiment E23: the packaging comparison with
// the full recovery ladder on the same module wreckage.
func runAdaptiveCompare(o *options) {
	schemes, err := faults.StandardSchemes(o.dim)
	if err != nil {
		fatal(err)
	}
	killCounts, err := parseInts(o.kills)
	if err != nil {
		fatal(err)
	}
	pts := adaptive.ModuleKillSweep(o.baseParams(), o.adaptiveConfig(), o.reliableConfig(), adaptive.StandardModes(), schemes, killCounts)
	for _, pt := range pts {
		if pt.Err != nil {
			fatal(pt.Err)
		}
	}
	if o.csv {
		fmt.Println("mode,scheme,killed,dead_nodes,dead_frac,goodput,detours,reroutes,unreachable_detected,overhead,opened")
		for _, pt := range pts {
			r := pt.Result
			fmt.Printf("%s,%s,%d,%d,%.4f,%.4f,%d,%d,%d,%.4f,%d\n",
				pt.Mode, pt.Scheme, pt.Killed, pt.DeadNodes, pt.DeadNodeFrac,
				pt.Goodput, r.Detours, r.Reroutes, r.UnreachableDetected,
				pt.Overhead, pt.Router.Opened)
		}
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "mode\tscheme\tkilled\tdead nodes\tgoodput\tdetours\treplans\tdetected\toverhead\tbreakers\n")
	for _, pt := range pts {
		r := pt.Result
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%.4f\t%d\t%d\t%d\t%.1f%%\t%d\n",
			pt.Mode, pt.Scheme, pt.Killed, pt.DeadNodes, pt.Goodput,
			r.Detours, r.Reroutes, r.UnreachableDetected, 100*pt.Overhead, pt.Router.Opened)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	fmt.Println("(E23: same seeded module draw per kill count, shared across schemes and modes)")
}
