package main

import (
	"encoding/json"
	"io"

	"bfvlsi/internal/lint"
)

// SARIF 2.1.0 output (-sarif): the minimal static-analysis result
// interchange document GitHub code scanning and the CI annotation step
// consume. Every analyzer in the suite is listed as a rule even when
// it has no findings, so consumers can enumerate the checks that ran;
// results reference rules by id (the analyzer name).

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// emitSARIF writes the findings as a single-run SARIF 2.1.0 log. A
// clean run emits an empty results array (never null), mirroring the
// -json contract.
func emitSARIF(w io.Writer, found []jsonDiagnostic) error {
	rules := []sarifRule{}
	for _, a := range lint.Suite() {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	results := []sarifResult{}
	for _, d := range found {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: d.File},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "bflint", Rules: rules}}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
