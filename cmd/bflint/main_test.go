package main

import (
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"
)

// The -json field names are load-bearing: the CI annotation step
// addresses them by name in a jq expression. Pin the schema.
func TestEmitJSONSchema(t *testing.T) {
	var sb strings.Builder
	err := emitJSON(&sb, []jsonDiagnostic{{
		File:     "internal/routing/routing.go",
		Line:     42,
		Column:   7,
		Category: "hotalloc",
		Message:  "make inside hot-path loop",
	}})
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, sb.String())
	}
	if len(decoded) != 1 {
		t.Fatalf("decoded %d findings, want 1", len(decoded))
	}
	for _, key := range []string{"file", "line", "column", "category", "message"} {
		if _, ok := decoded[0][key]; !ok {
			t.Errorf("finding is missing the %q key:\n%s", key, sb.String())
		}
	}
}

// A clean run must emit [] — not null, not empty output — so the CI
// step's jq indexing never faults.
func TestEmitJSONCleanIsEmptyArray(t *testing.T) {
	var sb strings.Builder
	if err := emitJSON(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(sb.String()); got != "[]" {
		t.Errorf("clean output = %q, want []", got)
	}
}

// End to end: `bflint -json` over a clean package exits 0 and prints a
// parseable (empty) JSON array on stdout.
func TestRunJSONCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("package load skipped in -short mode")
	}
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := run([]string{"-json", "bfvlsi/internal/bitutil"})
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d, want 0; output:\n%s", code, out)
	}
	var decoded []jsonDiagnostic
	if err := json.Unmarshal(out, &decoded); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, out)
	}
	if len(decoded) != 0 {
		t.Errorf("clean package produced %d findings: %v", len(decoded), decoded)
	}
}
