package main

import (
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"
)

// The -json field names are load-bearing: the CI annotation step
// addresses them by name in a jq expression. Pin the schema.
func TestEmitJSONSchema(t *testing.T) {
	var sb strings.Builder
	err := emitJSON(&sb, []jsonDiagnostic{
		{
			File:     "internal/routing/routing.go",
			Line:     42,
			Column:   7,
			Analyzer: "hotalloc",
			Category: "hotalloc",
			Message:  "make inside hot-path loop",
		},
		{
			File:     "internal/serve/cache.go",
			Line:     7,
			Column:   2,
			Analyzer: "lockcheck",
			Category: "lockcheck",
			Message:  "c.bytes is guarded by c.mu",
		},
		{
			File:     "internal/serve/cache.go",
			Line:     9,
			Column:   2,
			Analyzer: "lockcheck",
			Category: "lockcheck",
			Message:  "c.order is guarded by c.mu",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var decoded jsonReport
	dec := json.NewDecoder(strings.NewReader(sb.String()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&decoded); err != nil {
		t.Fatalf("output is not the report document: %v\n%s", err, sb.String())
	}
	if len(decoded.Findings) != 3 {
		t.Fatalf("decoded %d findings, want 3", len(decoded.Findings))
	}
	var asMap struct {
		Findings []map[string]any `json:"findings"`
		Summary  map[string]any   `json:"summary"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &asMap); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"file", "line", "column", "analyzer", "category", "message"} {
		if _, ok := asMap.Findings[0][key]; !ok {
			t.Errorf("finding is missing the %q key:\n%s", key, sb.String())
		}
	}
	if decoded.Summary.Total != 3 {
		t.Errorf("summary.total = %d, want 3", decoded.Summary.Total)
	}
	if decoded.Summary.ByAnalyzer["lockcheck"] != 2 || decoded.Summary.ByAnalyzer["hotalloc"] != 1 {
		t.Errorf("summary.by_analyzer = %v, want lockcheck:2 hotalloc:1", decoded.Summary.ByAnalyzer)
	}
}

// A clean run must emit an empty findings array and a zeroed summary —
// not nulls, not empty output — so the CI step's jq indexing never
// faults.
func TestEmitJSONCleanIsEmptyReport(t *testing.T) {
	var sb strings.Builder
	if err := emitJSON(&sb, nil); err != nil {
		t.Fatal(err)
	}
	var decoded jsonReport
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("clean output does not decode: %v\n%s", err, sb.String())
	}
	if decoded.Findings == nil {
		t.Error("clean output has null findings; want []")
	}
	if decoded.Summary.Total != 0 || decoded.Summary.ByAnalyzer == nil {
		t.Errorf("clean summary = %+v, want total 0 and non-null by_analyzer", decoded.Summary)
	}
}

// End to end: `bflint -json` over a clean package exits 0 and prints a
// parseable (empty) report on stdout.
func TestRunJSONCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("package load skipped in -short mode")
	}
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := run([]string{"-json", "bfvlsi/internal/bitutil"})
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d, want 0; output:\n%s", code, out)
	}
	var decoded jsonReport
	if err := json.Unmarshal(out, &decoded); err != nil {
		t.Fatalf("stdout is not the report document: %v\n%s", err, out)
	}
	if len(decoded.Findings) != 0 {
		t.Errorf("clean package produced %d findings: %v", len(decoded.Findings), decoded.Findings)
	}
	if decoded.Summary.Total != 0 {
		t.Errorf("clean package summary.total = %d, want 0", decoded.Summary.Total)
	}
}
