// Command bflint runs the repo's custom static-analysis suite — the
// mechanical form of the determinism, conservation, and facade
// contracts (see internal/lint).
//
// Standalone mode loads packages from source:
//
//	go run ./cmd/bflint ./...
//
// It also speaks the `go vet -vettool` protocol, so the same binary
// plugs into the build cache and test-variant coverage of the go
// command:
//
//	go build -o bin/bflint ./cmd/bflint
//	go vet -vettool=$PWD/bin/bflint ./...
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"bfvlsi/internal/lint"
	"bfvlsi/internal/lint/analysis"
	"bfvlsi/internal/lint/load"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("bflint", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bflint [-json|-sarif] [packages]\n       bflint -writeschema [-o file]\n       bflint unit.cfg   (go vet -vettool mode)\n\nanalyzers:\n")
		for _, a := range lint.Suite() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flagsJSON := fs.Bool("flags", false, "describe flags in JSON (go vet protocol)")
	jsonOut := fs.Bool("json", false, "emit findings and a per-analyzer summary as JSON on stdout (standalone mode only)")
	sarifOut := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log on stdout (standalone mode only)")
	writeSchema := fs.Bool("writeschema", false, "regenerate the wire/snapshot schema manifest instead of linting")
	outPath := fs.String("o", "", "output path for -writeschema (default <module>/internal/wire/schema.lock)")
	if err := parseArgs(fs, args); err != nil {
		return 2
	}

	if *flagsJSON {
		// bflint defines no tool flags beyond the protocol ones; -json,
		// -sarif, and -writeschema are standalone-only and not
		// advertised to go vet.
		fmt.Println("[]")
		return 0
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "bflint: -json and -sarif are mutually exclusive")
		return 2
	}
	if *writeSchema {
		if *jsonOut || *sarifOut || fs.NArg() > 0 {
			fmt.Fprintln(os.Stderr, "bflint: -writeschema takes no packages and no output-format flags")
			return 2
		}
		return runWriteSchema(*outPath)
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVet(rest[0])
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	mode := outText
	switch {
	case *jsonOut:
		mode = outJSON
	case *sarifOut:
		mode = outSARIF
	}
	return runStandalone(rest, mode)
}

// parseArgs handles -V=full before normal flag parsing: the go command
// probes the tool with it to build a cache key, and expects the reply
// on stdout in the objabi.AddVersionFlag format.
func parseArgs(fs *flag.FlagSet, args []string) error {
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" {
			printVersion()
			os.Exit(0)
		}
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := analysis.Validate(lint.Suite()); err != nil {
		fmt.Fprintln(os.Stderr, "bflint:", err)
		os.Exit(2)
	}
	return nil
}

// printVersion emits the executable identity line `go vet` uses for
// build caching: content-hashing the binary means any rebuild of the
// suite invalidates cached vet results.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bflint:", err)
		os.Exit(2)
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bflint:", err)
		os.Exit(2)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, "bflint:", err)
		os.Exit(2)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "bflint:", err)
		os.Exit(2)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%x\n", exe, h.Sum(nil))
}

// jsonDiagnostic is one finding in -json output. The field names are a
// stable contract: the CI annotation step turns them into
// `::error file=...,line=...` workflow commands with jq. Analyzer and
// Category carry the same value; Category predates the per-analyzer
// summary and stays for older consumers.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Category string `json:"category"`
	Message  string `json:"message"`
}

// jsonReport is the -json output document: the findings plus an
// end-of-run per-analyzer count summary, so CI can gate on
// `.summary.total` and dashboards can trend `.summary.by_analyzer`
// without re-aggregating.
type jsonReport struct {
	Findings []jsonDiagnostic `json:"findings"`
	Summary  jsonSummary      `json:"summary"`
}

type jsonSummary struct {
	Total      int            `json:"total"`
	ByAnalyzer map[string]int `json:"by_analyzer"`
}

// emitJSON writes the report document; a clean run emits an empty
// findings array and zeroed summary rather than nulls so consumers can
// always index the result.
func emitJSON(w io.Writer, found []jsonDiagnostic) error {
	if found == nil {
		found = []jsonDiagnostic{}
	}
	report := jsonReport{
		Findings: found,
		Summary:  jsonSummary{Total: len(found), ByAnalyzer: map[string]int{}},
	}
	for _, d := range found {
		report.Summary.ByAnalyzer[d.Analyzer]++
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// outputMode selects the standalone findings format.
type outputMode int

const (
	outText outputMode = iota
	outJSON
	outSARIF
)

// runStandalone loads the patterns from source and lints each package.
func runStandalone(patterns []string, mode outputMode) int {
	ld := load.New()
	pkgs, err := ld.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bflint:", err)
		return 2
	}
	var found []jsonDiagnostic
	for _, pkg := range pkgs {
		diags, err := lint.Run(pkg.Path, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bflint: %s: %v\n", pkg.Path, err)
			return 2
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			found = append(found, jsonDiagnostic{
				File:     pos.Filename,
				Line:     pos.Line,
				Column:   pos.Column,
				Analyzer: d.Category,
				Category: d.Category,
				Message:  d.Message,
			})
			if mode == outText {
				fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", pos, d.Message, d.Category)
			}
		}
	}
	switch mode {
	case outJSON:
		if err := emitJSON(os.Stdout, found); err != nil {
			fmt.Fprintln(os.Stderr, "bflint:", err)
			return 2
		}
	case outSARIF:
		if err := emitSARIF(os.Stdout, found); err != nil {
			fmt.Fprintln(os.Stderr, "bflint:", err)
			return 2
		}
	}
	if len(found) > 0 {
		return 1
	}
	return 0
}

// vetConfig is the compilation-unit description `go vet` hands the
// tool; field names follow the x/tools unitchecker Config.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVet analyzes one compilation unit under the go vet protocol: types
// come from the compiler's export data rather than source.
func runVet(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bflint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "bflint: decoding %s: %v\n", cfgPath, err)
		return 2
	}

	// bflint keeps no cross-package facts, but the protocol requires
	// the facts file to exist for downstream units.
	writeFacts := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				fmt.Fprintln(os.Stderr, "bflint:", err)
				os.Exit(2)
			}
		}
	}

	// Packages outside the module (stdlib deps being vetted for facts)
	// have no bound analyzers; skip the type-check entirely.
	if cfg.VetxOnly || len(lint.AnalyzersFor(cfg.ImportPath)) == 0 {
		writeFacts()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeFacts()
				return 0
			}
			fmt.Fprintln(os.Stderr, "bflint:", err)
			return 2
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})

	tconf := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeFacts()
			return 0
		}
		fmt.Fprintln(os.Stderr, "bflint:", err)
		return 2
	}

	diags, err := lint.Run(cfg.ImportPath, fset, files, tpkg, info)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bflint: %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	writeFacts()
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Category)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
