package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The SARIF shape is load-bearing: CI's jq expression indexes
// .runs[0].results[].locations[0].physicalLocation. Pin it.
func TestEmitSARIFSchema(t *testing.T) {
	var sb strings.Builder
	err := emitSARIF(&sb, []jsonDiagnostic{
		{
			File:     "internal/wire/fault.go",
			Line:     120,
			Column:   2,
			Analyzer: "wirecover",
			Category: "wirecover",
			Message:  "field FaultSpec.LinkRate is never read",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var decoded sarifLog
	dec := json.NewDecoder(strings.NewReader(sb.String()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&decoded); err != nil {
		t.Fatalf("output is not a SARIF log: %v\n%s", err, sb.String())
	}
	if decoded.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", decoded.Version)
	}
	if len(decoded.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(decoded.Runs))
	}
	run := decoded.Runs[0]
	if run.Tool.Driver.Name != "bflint" {
		t.Errorf("driver name = %q, want bflint", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) == 0 {
		t.Error("driver lists no rules; every suite analyzer should appear")
	}
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, want := range []string{"wirecover", "statecover", "schemalock"} {
		if !ruleIDs[want] {
			t.Errorf("rule %q missing from driver rules", want)
		}
	}
	if len(run.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(run.Results))
	}
	res := run.Results[0]
	if res.RuleID != "wirecover" || res.Level != "error" {
		t.Errorf("result = %+v, want ruleId wirecover level error", res)
	}
	loc := res.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/wire/fault.go" || loc.Region.StartLine != 120 || loc.Region.StartColumn != 2 {
		t.Errorf("location = %+v, want internal/wire/fault.go:120:2", loc)
	}
}

// A clean run must emit empty (not null) rules-consumer arrays so the
// CI jq gate `.runs[0].results | length` never faults.
func TestEmitSARIFCleanIsEmptyRun(t *testing.T) {
	var sb strings.Builder
	if err := emitSARIF(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), `"results": null`) {
		t.Fatalf("clean output has null results; want []:\n%s", sb.String())
	}
	var decoded sarifLog
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Runs[0].Results == nil || len(decoded.Runs[0].Results) != 0 {
		t.Errorf("clean results = %v, want empty non-null array", decoded.Runs[0].Results)
	}
}

// -json and -sarif are mutually exclusive output modes.
func TestJSONAndSARIFAreExclusive(t *testing.T) {
	if code := run([]string{"-json", "-sarif", "bfvlsi/internal/bitutil"}); code != 2 {
		t.Errorf("-json -sarif exit code = %d, want 2", code)
	}
}

// -writeschema is byte-stable run over run and matches the committed
// manifest, so `cmp` in make lint-schema is a reliable drift gate.
func TestWriteSchemaIsStableAndCommitted(t *testing.T) {
	if testing.Short() {
		t.Skip("package load skipped in -short mode")
	}
	dir := t.TempDir()
	first := filepath.Join(dir, "first.lock")
	second := filepath.Join(dir, "second.lock")
	if code := run([]string{"-writeschema", "-o", first}); code != 0 {
		t.Fatalf("-writeschema exit code = %d, want 0", code)
	}
	if code := run([]string{"-writeschema", "-o", second}); code != 0 {
		t.Fatalf("second -writeschema exit code = %d, want 0", code)
	}
	a, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(second)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("-writeschema is not byte-stable:\n--- first ---\n%s--- second ---\n%s", a, b)
	}
	committed, err := os.ReadFile(filepath.Join("..", "..", "internal", "wire", "schema.lock"))
	if err != nil {
		t.Fatalf("committed manifest missing: %v", err)
	}
	if string(a) != string(committed) {
		t.Errorf("committed internal/wire/schema.lock is stale; regenerate with `bflint -writeschema`:\n--- generated ---\n%s--- committed ---\n%s", a, committed)
	}
}
