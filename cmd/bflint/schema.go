package main

import (
	"fmt"
	"os"
	"path/filepath"

	"bfvlsi/internal/lint"
	"bfvlsi/internal/lint/load"
	"bfvlsi/internal/lint/schema"
)

// runWriteSchema regenerates the schema manifest (-writeschema): it
// loads the wire/snapshot packages, fingerprints every binary
// marshaler, and writes the canonical schema.lock. The output is a
// pure function of the source, so running it twice is byte-stable and
// `cmp` against the committed file is a drift gate.
func runWriteSchema(outPath string) int {
	if outPath == "" {
		root, err := moduleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "bflint:", err)
			return 2
		}
		outPath = filepath.Join(root, "internal", "wire", schema.ManifestName)
	}
	entries, err := schemaEntries()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bflint:", err)
		return 2
	}
	if err := os.WriteFile(outPath, schema.FormatManifest(entries), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bflint:", err)
		return 2
	}
	fmt.Fprintf(os.Stderr, "bflint: wrote %d schema entries to %s\n", len(entries), outPath)
	return 0
}

// schemaEntries builds the manifest entries for every marshaler in the
// wire packages.
func schemaEntries() ([]schema.Entry, error) {
	pkgs, err := load.New().Load(lint.WirePackagePaths()...)
	if err != nil {
		return nil, err
	}
	var entries []schema.Entry
	for _, pkg := range pkgs {
		for _, m := range schema.Marshalers(pkg.Types, pkg.Info, pkg.Files) {
			_, version, ok := schema.VersionOf(pkg.Info, m.Marshal)
			if !ok {
				return nil, fmt.Errorf("%s: cannot determine the version byte of (%s).MarshalBinary",
					pkg.Path, m.TypeName.Name())
			}
			entries = append(entries, schema.Entry{
				Type:        schema.TypeID(m.Named),
				Version:     version,
				Fields:      m.Struct.NumFields(),
				Fingerprint: schema.Fingerprint(m.Named),
			})
		}
	}
	return entries, nil
}

// moduleRoot walks up from the working directory to the go.mod root.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory; pass -o explicitly")
		}
		dir = parent
	}
}
