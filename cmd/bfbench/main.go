// Command bfbench measures the routing simulators' hot-loop cost and
// writes a machine-readable snapshot: ns/cycle, allocations/cycle, and
// bytes/cycle for the plain and virtual-channel simulators, under the
// same mid-size configuration the in-repo allocation benchmarks use
// (n=8, lambda=0.10, seed 42). `make bench-json` writes the snapshot to
// BENCH_routing.json so performance regressions show up in review as a
// diff of committed numbers.
//
// Usage:
//
//	bfbench                      # print the report to stdout
//	bfbench -o BENCH_routing.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"bfvlsi/internal/routing"
	"bfvlsi/internal/snapshot"
	"bfvlsi/internal/wire"
)

// benchParams is the shared simulator configuration; it mirrors the
// allocBenchParams of internal/routing's benchmarks so the snapshot and
// the in-repo numbers are comparable.
func benchParams(bufferLimit int) routing.Params {
	return routing.Params{
		N:           8,
		Lambda:      0.10,
		Warmup:      200,
		Cycles:      800,
		Seed:        42,
		BufferLimit: bufferLimit,
	}
}

// simulatorResult is one simulator's measured per-cycle cost.
type simulatorResult struct {
	NsPerCycle     float64 `json:"ns_per_cycle"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
	BytesPerCycle  float64 `json:"bytes_per_cycle"`
	Iterations     int     `json:"iterations"`
}

// checkpointResult is one simulator's measured checkpoint cost: the
// time to capture the full mid-run state and serialize it, and the
// serialized size. Capture happens at the end of warmup - the point
// the sweep farm forks from - so the size reflects a realistically
// loaded network.
type checkpointResult struct {
	NsPerCheckpoint float64 `json:"ns_per_checkpoint"`
	Bytes           int     `json:"bytes"`
	Iterations      int     `json:"iterations"`
}

// report is the BENCH_routing.json schema. Bump the schema string when
// fields change meaning, so downstream diff tooling can tell.
type report struct {
	Schema string `json:"schema"`
	Params struct {
		N           int     `json:"n"`
		Lambda      float64 `json:"lambda"`
		Warmup      int     `json:"warmup"`
		Cycles      int     `json:"cycles"`
		Seed        int64   `json:"seed"`
		VCBufferCap int     `json:"vcBufferCap"`
	} `json:"params"`
	Simulators  map[string]simulatorResult  `json:"simulators"`
	Checkpoints map[string]checkpointResult `json:"checkpoints"`
}

// options carries every flag value. Parsing and validation are pure:
// main turns a validation error into the exit-2 usage path, and the
// tests drive the same code with table argv lists.
type options struct {
	out       string
	benchtime string
}

func newOptions(set *flag.FlagSet) *options {
	o := &options{}
	set.StringVar(&o.out, "o", "", "write the JSON report to this file (default stdout)")
	set.StringVar(&o.benchtime, "benchtime", "1s", "measurement time per simulator (Go benchtime syntax, e.g. 2s or 100x)")
	return o
}

func parseOptions(args []string) (*options, error) {
	set := flag.NewFlagSet("bfbench", flag.ContinueOnError)
	o := newOptions(set)
	if err := set.Parse(args); err != nil {
		return nil, err
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	return o, nil
}

func (o *options) validate() error {
	if o.benchtime == "" {
		return fmt.Errorf("-benchtime must not be empty")
	}
	return nil
}

// measure runs one simulator configuration under testing.Benchmark and
// normalizes the result to per-cycle cost.
func measure(bufferLimit int) (simulatorResult, error) {
	p := benchParams(bufferLimit)
	cyclesPerRun := float64(p.Warmup + p.Cycles)
	var simErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := routing.Simulate(p); err != nil {
				simErr = err
				b.FailNow()
			}
		}
	})
	if simErr != nil {
		return simulatorResult{}, simErr
	}
	runs := float64(r.N) * cyclesPerRun
	return simulatorResult{
		NsPerCycle:     float64(r.T.Nanoseconds()) / runs,
		AllocsPerCycle: float64(r.MemAllocs) / runs,
		BytesPerCycle:  float64(r.MemBytes) / runs,
		Iterations:     r.N,
	}, nil
}

// measureCheckpoint warms a simulator up to the fork point and measures
// the capture+marshal cost of one full-state checkpoint.
func measureCheckpoint(bufferLimit int) (checkpointResult, error) {
	p := benchParams(bufferLimit)
	spec := snapshot.Spec{Route: wire.RouteSpec{
		N:           p.N,
		Lambda:      p.Lambda,
		Warmup:      p.Warmup,
		Cycles:      p.Cycles,
		Seed:        p.Seed,
		BufferLimit: p.BufferLimit,
	}}
	run, err := snapshot.Start(spec, nil)
	if err != nil {
		return checkpointResult{}, err
	}
	if err := run.StepTo(p.Warmup); err != nil {
		return checkpointResult{}, err
	}
	var size int
	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			data, err := run.Checkpoint().MarshalBinary()
			if err != nil {
				benchErr = err
				b.FailNow()
			}
			size = len(data)
		}
	})
	if benchErr != nil {
		return checkpointResult{}, benchErr
	}
	return checkpointResult{
		NsPerCheckpoint: float64(r.T.Nanoseconds()) / float64(r.N),
		Bytes:           size,
		Iterations:      r.N,
	}, nil
}

// run executes every simulator benchmark and assembles the report.
func run() (*report, error) {
	const vcBufferCap = 4
	rep := &report{
		Schema:      "bfvlsi/bench-routing/v1",
		Simulators:  make(map[string]simulatorResult, 2),
		Checkpoints: make(map[string]checkpointResult, 2),
	}
	p := benchParams(0)
	rep.Params.N = p.N
	rep.Params.Lambda = p.Lambda
	rep.Params.Warmup = p.Warmup
	rep.Params.Cycles = p.Cycles
	rep.Params.Seed = p.Seed
	rep.Params.VCBufferCap = vcBufferCap
	for _, sim := range []struct {
		name        string
		bufferLimit int
	}{
		{"plain", 0},
		{"vc", vcBufferCap},
	} {
		res, err := measure(sim.bufferLimit)
		if err != nil {
			return nil, fmt.Errorf("%s simulator: %w", sim.name, err)
		}
		rep.Simulators[sim.name] = res
		ck, err := measureCheckpoint(sim.bufferLimit)
		if err != nil {
			return nil, fmt.Errorf("%s checkpoint: %w", sim.name, err)
		}
		rep.Checkpoints[sim.name] = ck
	}
	return rep, nil
}

// write emits the report as indented JSON to the configured target.
func (o *options) write(rep *report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if o.out == "" {
		_, err := os.Stdout.Write(data)
		return err
	}
	f, err := os.Create(o.out)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", o.out)
	return nil
}

// benchtimeFlag returns the testing harness's -test.benchtime flag,
// registering the testing flags on first use.
func benchtimeFlag() *flag.Flag {
	if flag.CommandLine.Lookup("test.benchtime") == nil {
		testing.Init()
	}
	return flag.CommandLine.Lookup("test.benchtime")
}

func usageError(set *flag.FlagSet, err error) {
	fmt.Fprintln(os.Stderr, "bfbench:", err)
	set.Usage()
	os.Exit(2)
}

func main() {
	set := flag.NewFlagSet("bfbench", flag.ExitOnError)
	o := newOptions(set)
	_ = set.Parse(os.Args[1:])
	if err := o.validate(); err != nil {
		usageError(set, err)
	}
	// testing.Benchmark honors -test.benchtime; register the testing
	// flags and set it so -benchtime reaches the harness.
	if err := benchtimeFlag().Value.Set(o.benchtime); err != nil {
		usageError(set, fmt.Errorf("-benchtime %q: %w", o.benchtime, err))
	}
	rep, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bfbench:", err)
		os.Exit(1)
	}
	if err := o.write(rep); err != nil {
		fmt.Fprintln(os.Stderr, "bfbench:", err)
		os.Exit(1)
	}
}
