// Command bfbench measures the routing simulators' hot-loop cost and
// writes a machine-readable snapshot: ns/cycle, allocations/cycle, and
// bytes/cycle for the plain and virtual-channel simulators, under the
// same mid-size configuration the in-repo allocation benchmarks use
// (n=8, lambda=0.10, seed 42). `make bench-json` writes the snapshot to
// BENCH_routing.json so performance regressions show up in review as a
// diff of committed numbers.
//
// Usage:
//
//	bfbench                      # print the report to stdout
//	bfbench -o BENCH_routing.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"bfvlsi/internal/routing"
)

// benchParams is the shared simulator configuration; it mirrors the
// allocBenchParams of internal/routing's benchmarks so the snapshot and
// the in-repo numbers are comparable.
func benchParams(bufferLimit int) routing.Params {
	return routing.Params{
		N:           8,
		Lambda:      0.10,
		Warmup:      200,
		Cycles:      800,
		Seed:        42,
		BufferLimit: bufferLimit,
	}
}

// simulatorResult is one simulator's measured per-cycle cost.
type simulatorResult struct {
	NsPerCycle     float64 `json:"ns_per_cycle"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
	BytesPerCycle  float64 `json:"bytes_per_cycle"`
	Iterations     int     `json:"iterations"`
}

// report is the BENCH_routing.json schema. Bump the schema string when
// fields change meaning, so downstream diff tooling can tell.
type report struct {
	Schema string `json:"schema"`
	Params struct {
		N           int     `json:"n"`
		Lambda      float64 `json:"lambda"`
		Warmup      int     `json:"warmup"`
		Cycles      int     `json:"cycles"`
		Seed        int64   `json:"seed"`
		VCBufferCap int     `json:"vcBufferCap"`
	} `json:"params"`
	Simulators map[string]simulatorResult `json:"simulators"`
}

// options carries every flag value. Parsing and validation are pure:
// main turns a validation error into the exit-2 usage path, and the
// tests drive the same code with table argv lists.
type options struct {
	out       string
	benchtime string
}

func newOptions(set *flag.FlagSet) *options {
	o := &options{}
	set.StringVar(&o.out, "o", "", "write the JSON report to this file (default stdout)")
	set.StringVar(&o.benchtime, "benchtime", "1s", "measurement time per simulator (Go benchtime syntax, e.g. 2s or 100x)")
	return o
}

func parseOptions(args []string) (*options, error) {
	set := flag.NewFlagSet("bfbench", flag.ContinueOnError)
	o := newOptions(set)
	if err := set.Parse(args); err != nil {
		return nil, err
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	return o, nil
}

func (o *options) validate() error {
	if o.benchtime == "" {
		return fmt.Errorf("-benchtime must not be empty")
	}
	return nil
}

// measure runs one simulator configuration under testing.Benchmark and
// normalizes the result to per-cycle cost.
func measure(bufferLimit int) (simulatorResult, error) {
	p := benchParams(bufferLimit)
	cyclesPerRun := float64(p.Warmup + p.Cycles)
	var simErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := routing.Simulate(p); err != nil {
				simErr = err
				b.FailNow()
			}
		}
	})
	if simErr != nil {
		return simulatorResult{}, simErr
	}
	runs := float64(r.N) * cyclesPerRun
	return simulatorResult{
		NsPerCycle:     float64(r.T.Nanoseconds()) / runs,
		AllocsPerCycle: float64(r.MemAllocs) / runs,
		BytesPerCycle:  float64(r.MemBytes) / runs,
		Iterations:     r.N,
	}, nil
}

// run executes every simulator benchmark and assembles the report.
func run() (*report, error) {
	const vcBufferCap = 4
	rep := &report{
		Schema:     "bfvlsi/bench-routing/v1",
		Simulators: make(map[string]simulatorResult, 2),
	}
	p := benchParams(0)
	rep.Params.N = p.N
	rep.Params.Lambda = p.Lambda
	rep.Params.Warmup = p.Warmup
	rep.Params.Cycles = p.Cycles
	rep.Params.Seed = p.Seed
	rep.Params.VCBufferCap = vcBufferCap
	for _, sim := range []struct {
		name        string
		bufferLimit int
	}{
		{"plain", 0},
		{"vc", vcBufferCap},
	} {
		res, err := measure(sim.bufferLimit)
		if err != nil {
			return nil, fmt.Errorf("%s simulator: %w", sim.name, err)
		}
		rep.Simulators[sim.name] = res
	}
	return rep, nil
}

// write emits the report as indented JSON to the configured target.
func (o *options) write(rep *report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if o.out == "" {
		_, err := os.Stdout.Write(data)
		return err
	}
	f, err := os.Create(o.out)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", o.out)
	return nil
}

// benchtimeFlag returns the testing harness's -test.benchtime flag,
// registering the testing flags on first use.
func benchtimeFlag() *flag.Flag {
	if flag.CommandLine.Lookup("test.benchtime") == nil {
		testing.Init()
	}
	return flag.CommandLine.Lookup("test.benchtime")
}

func usageError(set *flag.FlagSet, err error) {
	fmt.Fprintln(os.Stderr, "bfbench:", err)
	set.Usage()
	os.Exit(2)
}

func main() {
	set := flag.NewFlagSet("bfbench", flag.ExitOnError)
	o := newOptions(set)
	_ = set.Parse(os.Args[1:])
	if err := o.validate(); err != nil {
		usageError(set, err)
	}
	// testing.Benchmark honors -test.benchtime; register the testing
	// flags and set it so -benchtime reaches the harness.
	if err := benchtimeFlag().Value.Set(o.benchtime); err != nil {
		usageError(set, fmt.Errorf("-benchtime %q: %w", o.benchtime, err))
	}
	rep, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bfbench:", err)
		os.Exit(1)
	}
	if err := o.write(rep); err != nil {
		fmt.Fprintln(os.Stderr, "bfbench:", err)
		os.Exit(1)
	}
}
