package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestParseOptions(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"defaults", nil, ""},
		{"output file", []string{"-o", "out.json"}, ""},
		{"benchtime duration", []string{"-benchtime", "2s"}, ""},
		{"benchtime count", []string{"-benchtime", "5x"}, ""},
		{"empty benchtime", []string{"-benchtime", ""}, "must not be empty"},
		{"unknown flag", []string{"-cycles", "10"}, "flag provided but not defined"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := parseOptions(c.args)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %v does not contain %q", err, c.wantErr)
			}
		})
	}
}

// TestMeasureAndReport runs the real measurement with a minimal
// iteration budget and checks the report invariants: both simulators
// present, positive per-cycle times, and a stable schema string.
func TestMeasureAndReport(t *testing.T) {
	if err := setBenchtime(t, "1x"); err != nil {
		t.Fatal(err)
	}
	rep, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "bfvlsi/bench-routing/v1" {
		t.Fatalf("schema %q", rep.Schema)
	}
	for _, name := range []string{"plain", "vc"} {
		res, ok := rep.Simulators[name]
		if !ok {
			t.Fatalf("report is missing the %s simulator", name)
		}
		if res.NsPerCycle <= 0 || res.Iterations < 1 {
			t.Fatalf("%s: implausible result %+v", name, res)
		}
		if res.AllocsPerCycle < 0 || res.BytesPerCycle < 0 {
			t.Fatalf("%s: negative memory metrics %+v", name, res)
		}
	}
	for _, name := range []string{"plain", "vc"} {
		ck, ok := rep.Checkpoints[name]
		if !ok {
			t.Fatalf("report is missing the %s checkpoint cost", name)
		}
		if ck.NsPerCheckpoint <= 0 || ck.Bytes <= 0 || ck.Iterations < 1 {
			t.Fatalf("%s: implausible checkpoint result %+v", name, ck)
		}
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"schema"`, `"params"`, `"simulators"`, `"ns_per_cycle"`, `"allocs_per_cycle"`, `"checkpoints"`, `"ns_per_checkpoint"`} {
		if !strings.Contains(string(data), field) {
			t.Fatalf("JSON report is missing %s: %s", field, data)
		}
	}
}

// setBenchtime points testing.Benchmark at a tiny iteration budget and
// restores the default afterwards.
func setBenchtime(t *testing.T, v string) error {
	t.Helper()
	f := benchtimeFlag()
	old := f.Value.String()
	t.Cleanup(func() { _ = f.Value.Set(old) })
	return f.Value.Set(v)
}
