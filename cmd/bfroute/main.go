// Command bfroute drives the synchronous packet-routing simulator: load
// sweeps, saturation search, traffic patterns, and module-boundary
// traffic measurement.
//
// Usage:
//
//	bfroute -n 6 -lambda 0.2                 # one run, uniform traffic
//	bfroute -n 6 -lambda 0.2 -pattern bitrev # adversarial pattern
//	bfroute -n 6 -saturate                   # bisection for lambda*
//	bfroute -n 6 -sweep                      # load sweep table
//	bfroute -n 6 -lambda 0.2 -modrows 8      # boundary traffic per module
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"bfvlsi/internal/packaging"
	"bfvlsi/internal/routing"
)

var (
	dim      = flag.Int("n", 6, "butterfly dimension")
	lambda   = flag.Float64("lambda", 0.1, "per-node injection probability")
	warmup   = flag.Int("warmup", 300, "warmup cycles")
	cycles   = flag.Int("cycles", 1000, "measured cycles")
	seed     = flag.Int64("seed", 1, "random seed")
	pattern  = flag.String("pattern", "uniform", "traffic pattern: uniform | bitrev | transpose | complement | shuffle")
	saturate = flag.Bool("saturate", false, "search for the saturation rate")
	sweep    = flag.Bool("sweep", false, "run a load sweep")
	modRows  = flag.Int("modrows", 0, "rows per module for boundary-traffic measurement (0 = off)")
	buffers  = flag.Int("buffers", 0, "per-link buffer limit (0 = unbounded)")
	tracePth = flag.String("trace", "", "write a per-cycle CSV trace to this file")
)

// usageError reports a bad flag value, prints the usage, and exits 2, so
// misuse never reaches the simulator as a panic.
func usageError(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "bfroute: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func validateFlags() {
	if *dim < 1 || *dim > 14 {
		usageError("-n %d out of range [1,14]", *dim)
	}
	if *lambda <= 0 || *lambda > 1 {
		usageError("-lambda %v outside (0,1]", *lambda)
	}
	if *warmup < 0 {
		usageError("-warmup %d is negative", *warmup)
	}
	if *cycles <= 0 {
		usageError("-cycles %d must be positive", *cycles)
	}
	if *modRows < 0 {
		usageError("-modrows %d is negative", *modRows)
	}
	if *buffers < 0 {
		usageError("-buffers %d is negative", *buffers)
	}
}

func main() {
	flag.Parse()
	validateFlags()
	pat, err := parsePattern(*pattern)
	if err != nil {
		usageError("%v", err)
	}
	switch {
	case *saturate:
		runSaturate()
	case *sweep:
		runSweep(pat)
	default:
		runOnce(pat)
	}
}

func parsePattern(s string) (routing.Pattern, error) {
	switch s {
	case "uniform":
		return routing.Uniform, nil
	case "bitrev", "bit-reverse":
		return routing.BitReverse, nil
	case "transpose":
		return routing.Transpose, nil
	case "complement":
		return routing.Complement, nil
	case "shuffle":
		return routing.Shuffle, nil
	default:
		return 0, fmt.Errorf("unknown pattern %q", s)
	}
}

func params(l float64) routing.Params {
	p := routing.Params{
		N: *dim, Lambda: l, Warmup: *warmup, Cycles: *cycles, Seed: *seed,
		BufferLimit: *buffers,
	}
	if *modRows > 0 {
		rows := 1 << uint(*dim)
		p.ModuleOf = make([]int, *dim*rows)
		for col := 0; col < *dim; col++ {
			for row := 0; row < rows; row++ {
				p.ModuleOf[col*rows+row] = row / *modRows
			}
		}
	}
	return p
}

func runOnce(pat routing.Pattern) {
	p := params(*lambda)
	var trace *os.File
	if *tracePth != "" {
		f, err := os.Create(*tracePth)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		trace = f
		p.Trace = f
	}
	r, err := routing.SimulatePattern(p, pat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// The trace is complete once the simulation returns; closing here
	// surfaces any buffered write failure before the file is advertised.
	if trace != nil {
		if err := trace.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Printf("B_%d wrapped, %v traffic, lambda=%.4f over %d cycles:\n", *dim, pat, *lambda, *cycles)
	fmt.Printf("  throughput:   %.4f pkts/node/cycle (%.1f%% of offered)\n",
		r.Throughput, 100*r.Throughput / *lambda)
	fmt.Printf("  avg latency:  %.2f cycles (avg hops %.2f)\n", r.AvgLatency, r.AvgHops)
	fmt.Printf("  backlog:      %d packets (max queue %d)\n", r.Backlog, r.MaxQueue)
	if *buffers > 0 {
		fmt.Printf("  backpressure: %d stalls, %d injection drops\n", r.Stalls, r.InjectionDrops)
	}
	if *tracePth != "" {
		fmt.Printf("  trace:        %s\n", *tracePth)
	}
	if *modRows > 0 {
		rows := 1 << uint(*dim)
		modules := rows / *modRows
		fmt.Printf("  boundary:     %.2f crossings/cycle (%.2f per module; Omega(M/log R) = %.2f)\n",
			r.BoundaryCrossingsPerCycle,
			r.BoundaryCrossingsPerCycle/float64(modules),
			packaging.InjectionLowerBound(*modRows**dim, rows))
	}
}

func runSweep(pat routing.Pattern) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "lambda\tthroughput\tefficiency\tlatency\tbacklog\n")
	theory := routing.TheoreticalSaturation(*dim)
	for _, frac := range []float64{0.2, 0.4, 0.6, 0.8, 0.9, 1.0, 1.1, 1.3} {
		l := theory * frac
		r, err := routing.SimulatePattern(params(l), pat)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "%.4f\t%.4f\t%.1f%%\t%.1f\t%d\n",
			l, r.Throughput, 100*r.Throughput/l, r.AvgLatency, r.Backlog)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("(fluid-limit saturation for n=%d: %.4f)\n", *dim, theory)
}

func runSaturate() {
	rate, err := routing.SaturationRate(*dim, routing.SaturationOptions{
		Warmup: *warmup, Cycles: *cycles, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("B_%d: simulated saturation lambda* = %.4f (x n = %.3f; fluid limit %.4f)\n",
		*dim, rate, rate*float64(*dim), routing.TheoreticalSaturation(*dim))
}
