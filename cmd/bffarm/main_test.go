package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"bfvlsi/internal/dispatch"
	"bfvlsi/internal/serve"
	"bfvlsi/internal/sweepfarm"
)

// newTestFlagSet builds a non-exiting flag set for table-driven parses.
func newTestFlagSet(t *testing.T) *flag.FlagSet {
	t.Helper()
	set := flag.NewFlagSet("bffarm", flag.ContinueOnError)
	set.SetOutput(&bytes.Buffer{})
	return set
}

func TestParseValidation(t *testing.T) {
	w := []string{"-workers", "http://127.0.0.1:8417"}
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"minimal", w, ""},
		{"two workers", []string{"-workers", "http://a:1, http://b:2"}, ""},
		{"full knobs", append([]string{"-lease", "10s", "-timeout", "5s", "-attempts", "6",
			"-backoff", "10ms", "-backoffcap", "1s", "-jitter", "5ms", "-hedge", "100ms",
			"-breaker", "2", "-cooldown", "1s", "-inflight", "8", "-journaldir", "x"}, w...), ""},
		{"no workers", nil, "-workers is required"},
		{"blank workers", []string{"-workers", " , "}, "-workers is required"},
		{"bad scheme", []string{"-workers", "ftp://h:1"}, "not an http(s) URL"},
		{"bad dim", append([]string{"-n", "0"}, w...), "out of range"},
		{"bad lambda", append([]string{"-lambda", "0"}, w...), "outside (0,1]"},
		{"bad rate", append([]string{"-rates", "1.5"}, w...), "outside (0,1)"},
		{"bad rates syntax", append([]string{"-rates", "a,b"}, w...), "bad value"},
		{"no points", append([]string{"-rates", "", "-control=false"}, w...), "no sweep points"},
		{"zero lease", append([]string{"-lease", "0"}, w...), "must be positive"},
		{"negative hedge", append([]string{"-hedge", "-1s"}, w...), "negative duration"},
		{"zero attempts", append([]string{"-attempts", "0"}, w...), "at least 1"},
		{"zero breaker", append([]string{"-breaker", "0"}, w...), "at least 1"},
		{"negative inflight", append([]string{"-inflight", "-2"}, w...), "is negative"},
		{"bad fork", append([]string{"-fork", "-5"}, w...), "-fork"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			set := newTestFlagSet(t)
			o := newOptions(set)
			if err := set.Parse(c.args); err != nil {
				t.Fatalf("flag parse: %v", err)
			}
			err := o.validate()
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %v does not contain %q", err, c.wantErr)
			}
		})
	}
}

// startWorker runs an in-process bfserve and returns its URL.
func startWorker(t *testing.T) string {
	t.Helper()
	var mu sync.Mutex
	now := time.Unix(0, 0)
	srv := serve.New(serve.Config{
		CacheEntries: 64,
		MaxDim:       8,
		Now: func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			now = now.Add(time.Millisecond)
			return now
		},
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// farmArgs is a small, fast sweep shared by the end-to-end tests.
func farmArgs(workers string) []string {
	return []string{
		"-workers", workers,
		"-n", "3", "-lambda", "0.3", "-warmup", "20", "-cycles", "60",
		"-rates", "0.02,0.05", "-faultseeds", "1,2",
		"-backoff", "1ms", "-jitter", "1ms",
	}
}

// parseFor parses argv into validated options, failing the test on any
// error.
func parseFor(t *testing.T, args []string) *options {
	t.Helper()
	set := newTestFlagSet(t)
	o := newOptions(set)
	if err := set.Parse(args); err != nil {
		t.Fatalf("flag parse: %v", err)
	}
	if err := o.validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return o
}

// TestFarmEndToEnd drives the full command against two in-process
// workers and checks the report matches a local serial sweep over the
// identical spec — the bfsweep/bffarm agreement the docs promise.
func TestFarmEndToEnd(t *testing.T) {
	workers := startWorker(t) + "," + startWorker(t)
	o := parseFor(t, farmArgs(workers))

	var out, errBuf bytes.Buffer
	if code := run(o, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	text := out.String()
	if !strings.Contains(text, "B_3 lambda=0.3000, 5 points (0 from journals)") {
		t.Fatalf("missing header:\n%s", text)
	}
	if !strings.Contains(text, "control") || !strings.Contains(text, "0.0500") {
		t.Fatalf("missing table rows:\n%s", text)
	}
	if !strings.Contains(text, "fleet: 5 queries (0 deduped)") {
		t.Fatalf("missing fleet summary:\n%s", text)
	}

	// The distributed report and the serial farm agree byte for byte.
	spec, _ := o.farmSpec()
	rep, err := sweepfarm.Run(spec, sweepfarm.Options{Workers: 2})
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	serial, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	drep, _, err := dispatch.Run(spec, o.dispatchConfig())
	if err != nil {
		t.Fatalf("dispatch run: %v", err)
	}
	distributed, err := drep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial, distributed) {
		t.Fatal("bffarm and bfsweep disagree on the report bytes")
	}
}

// TestFarmResumes checks -journaldir: a second identical invocation
// replays every point without recomputing.
func TestFarmResumes(t *testing.T) {
	workers := startWorker(t)
	args := append(farmArgs(workers), "-journaldir", t.TempDir())

	var out, errBuf bytes.Buffer
	if code := run(parseFor(t, args), &out, &errBuf); code != 0 {
		t.Fatalf("first run exit %d, stderr: %s", code, errBuf.String())
	}
	out.Reset()
	if code := run(parseFor(t, args), &out, &errBuf); code != 0 {
		t.Fatalf("second run exit %d, stderr: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "(5 from journals)") {
		t.Fatalf("second run did not resume:\n%s", out.String())
	}
}

// TestStatszEndpoint drives serveStats directly: the endpoint answers
// GET /statsz with a JSON snapshot that tracks the hooks, and stop()
// tears the listener down.
func TestStatszEndpoint(t *testing.T) {
	live := dispatch.NewLive()
	bound, stop, err := serveStats("127.0.0.1:0", live)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	resp, err := http.Get("http://" + bound + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /statsz = %d", resp.StatusCode)
	}
	var snap dispatch.LiveStats
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("/statsz body does not decode: %v", err)
	}
	if snap.LeasesOutstanding != 0 || snap.Breakers == nil {
		t.Errorf("fresh snapshot = %+v, want zeroed counters and a non-null breaker list", snap)
	}
}

// TestFarmStatsAddr runs the whole command with -statsaddr and checks
// the farm still completes (the endpoint rides along without changing
// the report path).
func TestFarmStatsAddr(t *testing.T) {
	workers := startWorker(t)
	args := append(farmArgs(workers), "-statsaddr", "127.0.0.1:0")
	var out, errBuf bytes.Buffer
	if code := run(parseFor(t, args), &out, &errBuf); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "/statsz") {
		t.Fatalf("stderr does not announce the stats endpoint: %q", errBuf.String())
	}
	if !strings.Contains(out.String(), "fleet: 5 queries") {
		t.Fatalf("missing fleet summary:\n%s", out.String())
	}
}

// TestFarmReportsFailure pins the failure path: an unreachable fleet
// exits 1 with a diagnostic, not 0 with an empty table.
func TestFarmReportsFailure(t *testing.T) {
	args := append(farmArgs("http://127.0.0.1:1"), "-attempts", "1", "-lease", "2s")
	var out, errBuf bytes.Buffer
	if code := run(parseFor(t, args), &out, &errBuf); code != 1 {
		t.Fatalf("exit %d against an unreachable fleet, want 1", code)
	}
	if !strings.Contains(errBuf.String(), "bffarm:") {
		t.Fatalf("no diagnostic on stderr: %q", errBuf.String())
	}
}
