// Command bffarm runs a fault-scenario sweep on a fleet of bfserve
// workers (see internal/dispatch): the base run is warmed up and
// checkpointed locally once, then every sweep point is handed out over
// POST /v1/whatif with leases, retries under exponential backoff,
// per-worker circuit breakers, and optional request hedging. The merged
// report is byte-identical to what a local bfsweep over the same spec
// produces.
//
// Usage:
//
//	bffarm -workers http://h1:8417,http://h2:8417 -n 6 -lambda 0.2
//	bffarm -workers http://h1:8417 -rates 0.02,0.05 -faultseeds 1,2,3
//	bffarm -workers ... -journaldir farm.d     # killable and resumable
//	bffarm -workers ... -hedge 200ms           # duplicate stragglers
//
// With -journaldir every worker lane journals finished points (fsynced
// per record); a killed coordinator rerun merges all journals in the
// directory and dispatches only what is missing.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"bfvlsi/internal/dispatch"
	"bfvlsi/internal/snapshot"
	"bfvlsi/internal/sweepfarm"
	"bfvlsi/internal/wire"
)

// options carries every flag value. Parsing and validation are pure (no
// exits, no prints): main turns a validation error into the exit-2
// usage path, and the tests drive the same code with table argv lists.
type options struct {
	// sweep shape (mirrors bfsweep)
	dim        int
	lambda     float64
	warmup     int
	cycles     int
	seed       int64
	buffers    int
	ttl        int
	reliable   bool
	adaptive   bool
	rates      string
	faultSeeds string
	control    bool
	fork       int

	// fleet and reliability knobs
	workers    string
	journalDir string
	inflight   int
	lease      time.Duration
	timeout    time.Duration
	attempts   int
	backoff    time.Duration
	backoffCap time.Duration
	jitter     time.Duration
	retrySeed  int64
	hedge      time.Duration
	breaker    int
	cooldown   time.Duration
	statsAddr  string

	rateList   []float64
	seedList   []int64
	workerList []string
}

// newOptions registers every flag on the given set.
func newOptions(set *flag.FlagSet) *options {
	o := &options{}
	set.IntVar(&o.dim, "n", 6, "butterfly dimension")
	set.Float64Var(&o.lambda, "lambda", 0.1, "per-node injection probability")
	set.IntVar(&o.warmup, "warmup", 200, "warmup cycles")
	set.IntVar(&o.cycles, "cycles", 600, "measured cycles")
	set.Int64Var(&o.seed, "seed", 1, "traffic seed")
	set.IntVar(&o.buffers, "buffers", 4, "per-link buffer limit (0 = unbounded)")
	set.IntVar(&o.ttl, "ttl", 0, "packet TTL (0 = default for faulted runs)")
	set.BoolVar(&o.reliable, "reliable", false, "layer the reliable transport over every run")
	set.BoolVar(&o.adaptive, "adaptive", false, "use the adaptive fault-aware router")
	set.StringVar(&o.rates, "rates", "0.01,0.02,0.05", "comma-separated link fault rates")
	set.StringVar(&o.faultSeeds, "faultseeds", "1,2,3", "comma-separated fault-plan seeds")
	set.BoolVar(&o.control, "control", true, "include a fault-free control point")
	set.IntVar(&o.fork, "fork", -1, "fork cycle for the warmed-up checkpoint (-1 = end of warmup)")

	set.StringVar(&o.workers, "workers", "", "comma-separated bfserve worker base URLs (required)")
	set.StringVar(&o.journalDir, "journaldir", "", "per-worker journal directory (empty = not resumable)")
	set.IntVar(&o.inflight, "inflight", 0, "concurrently leased queries (0 = twice the worker count)")
	set.DurationVar(&o.lease, "lease", 30*time.Second, "lease TTL: how long a point may stay assigned to a worker")
	set.DurationVar(&o.timeout, "timeout", 0, "per-request deadline inside the lease (0 = lease TTL only)")
	set.IntVar(&o.attempts, "attempts", 4, "per-point retry budget, first attempt included")
	set.DurationVar(&o.backoff, "backoff", 50*time.Millisecond, "retry backoff base (doubles per attempt)")
	set.DurationVar(&o.backoffCap, "backoffcap", 2*time.Second, "retry backoff cap")
	set.DurationVar(&o.jitter, "jitter", 25*time.Millisecond, "max uniform jitter added to each backoff")
	set.Int64Var(&o.retrySeed, "retryseed", 1, "seed for the backoff jitter")
	set.DurationVar(&o.hedge, "hedge", 0, "hedge stragglers onto a second worker after this delay (0 = off)")
	set.IntVar(&o.breaker, "breaker", 3, "consecutive failures that open a worker's circuit breaker")
	set.DurationVar(&o.cooldown, "cooldown", 2*time.Second, "breaker cooldown before a half-open probe")
	set.StringVar(&o.statsAddr, "statsaddr", "", "serve GET /statsz (live fleet counters and breaker states as JSON) on this address while the farm runs (empty = off)")
	return o
}

// validate audits flag ranges and parses the list-valued flags.
func (o *options) validate() error {
	if o.dim < 1 || o.dim > 14 {
		return fmt.Errorf("-n %d out of range [1,14]", o.dim)
	}
	if o.lambda <= 0 || o.lambda > 1 {
		return fmt.Errorf("-lambda %v outside (0,1]", o.lambda)
	}
	if o.warmup < 0 || o.cycles <= 0 {
		return fmt.Errorf("-warmup %d / -cycles %d invalid", o.warmup, o.cycles)
	}
	if o.buffers < 0 || o.ttl < 0 {
		return fmt.Errorf("-buffers %d / -ttl %d negative", o.buffers, o.ttl)
	}
	if o.fork < -1 || o.fork > o.warmup+o.cycles {
		return fmt.Errorf("-fork %d outside [0,%d]", o.fork, o.warmup+o.cycles)
	}
	var err error
	if o.rateList, err = parseFloats(o.rates); err != nil {
		return fmt.Errorf("-rates: %w", err)
	}
	for _, r := range o.rateList {
		if r <= 0 || r >= 1 {
			return fmt.Errorf("-rates: rate %v outside (0,1)", r)
		}
	}
	if o.seedList, err = parseInts(o.faultSeeds); err != nil {
		return fmt.Errorf("-faultseeds: %w", err)
	}
	if len(o.rateList)*len(o.seedList) == 0 && !o.control {
		return fmt.Errorf("no sweep points: empty -rates or -faultseeds and -control=false")
	}

	for _, part := range strings.Split(o.workers, ",") {
		if part = strings.TrimSpace(part); part != "" {
			o.workerList = append(o.workerList, part)
		}
	}
	if len(o.workerList) == 0 {
		return fmt.Errorf("-workers is required: give at least one bfserve base URL")
	}
	for _, u := range o.workerList {
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			return fmt.Errorf("-workers: %q is not an http(s) URL", u)
		}
	}
	if o.inflight < 0 {
		return fmt.Errorf("-inflight %d is negative (0 selects the default)", o.inflight)
	}
	if o.lease <= 0 {
		return fmt.Errorf("-lease %v must be positive", o.lease)
	}
	if o.timeout < 0 || o.backoff < 0 || o.backoffCap < 0 || o.jitter < 0 || o.hedge < 0 || o.cooldown < 0 {
		return fmt.Errorf("negative duration flag")
	}
	if o.attempts < 1 {
		return fmt.Errorf("-attempts %d must be at least 1", o.attempts)
	}
	if o.breaker < 1 {
		return fmt.Errorf("-breaker %d must be at least 1", o.breaker)
	}
	return nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// pointLabel describes one sweep point for the report table.
type pointLabel struct {
	rate float64
	seed int64
}

// farmSpec assembles the sweepfarm spec and the per-point labels,
// identically to bfsweep — the two commands must agree on the spec for
// their reports to agree on the bytes.
func (o *options) farmSpec() (sweepfarm.Spec, []pointLabel) {
	base := snapshot.Spec{
		Route: wire.RouteSpec{
			N: o.dim, Lambda: o.lambda, Warmup: o.warmup, Cycles: o.cycles,
			Seed: o.seed, BufferLimit: o.buffers, TTL: o.ttl,
		},
	}
	if o.reliable {
		base.Reliable = &snapshot.ReliableSpec{
			Timeout: 4 * o.dim, MaxRetries: 5, Jitter: 3, Seed: o.seed + 1,
			MeasureFrom: o.warmup,
		}
	}
	if o.adaptive {
		base.Adaptive = &snapshot.AdaptiveSpec{Seed: o.seed + 2}
	}
	fork := o.fork
	if fork < 0 {
		fork = o.warmup
	}
	var points []*wire.FaultSpec
	var labels []pointLabel
	if o.control {
		points = append(points, nil)
		labels = append(labels, pointLabel{})
	}
	for _, rate := range o.rateList {
		for _, seed := range o.seedList {
			points = append(points, &wire.FaultSpec{N: o.dim, LinkRate: rate, Seed: seed})
			labels = append(labels, pointLabel{rate: rate, seed: seed})
		}
	}
	return sweepfarm.Spec{Base: base, ForkCycle: fork, Points: points}, labels
}

// dispatchConfig assembles the coordinator config from the flags.
func (o *options) dispatchConfig() dispatch.Config {
	return dispatch.Config{
		Workers:          o.workerList,
		JournalDir:       o.journalDir,
		Inflight:         o.inflight,
		LeaseTTL:         o.lease,
		RequestTimeout:   o.timeout,
		MaxAttempts:      o.attempts,
		BackoffBase:      o.backoff,
		BackoffCap:       o.backoffCap,
		JitterMax:        o.jitter,
		Seed:             o.retrySeed,
		HedgeAfter:       o.hedge,
		BreakerThreshold: o.breaker,
		BreakerCooldown:  o.cooldown,
		// The coordinator is where determinism ends and operations begin:
		// this is the command's one wall-clock injection point (lease
		// expiry and breaker cooldowns).
		Now: time.Now, //bflint:ignore detrand
	}
}

// serveStats starts the /statsz endpoint on addr, returning the bound
// address (addr may carry port 0) and a stop function that shuts the
// listener down and joins the serve goroutine.
func serveStats(addr string, live *dispatch.Live) (bound string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("-statsaddr: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/statsz", live.Handler())
	srv := &http.Server{Handler: mux}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln) // always http.ErrServerClosed after a clean Close
	}()
	return ln.Addr().String(), func() {
		_ = srv.Close()
		<-done
	}, nil
}

// run executes the distributed farm and writes the report table plus a
// fleet summary; it returns the process exit code.
func run(o *options, stdout, stderr io.Writer) int {
	spec, labels := o.farmSpec()
	cfg := o.dispatchConfig()
	if o.statsAddr != "" {
		cfg.Live = dispatch.NewLive()
		bound, stop, err := serveStats(o.statsAddr, cfg.Live)
		if err != nil {
			fmt.Fprintln(stderr, "bffarm:", err)
			return 1
		}
		defer stop()
		fmt.Fprintf(stderr, "bffarm: serving live stats on http://%s/statsz\n", bound)
	}
	rep, st, err := dispatch.Run(spec, cfg)
	if err != nil {
		fmt.Fprintln(stderr, "bffarm:", err)
		return 1
	}
	fmt.Fprintf(stdout, "B_%d lambda=%.4f, %d points (%d from journals), fork at cycle %d, %d workers\n",
		o.dim, o.lambda, len(rep.Points), rep.Resumed, spec.ForkCycle, len(o.workerList))
	w := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "point\trate\tseed\tthroughput\tdelivered\tdropped\tunreachable\tretransmit\tgaveup\n")
	for _, p := range rep.Points {
		l := labels[p.Index]
		r := p.Result
		scenario := "control"
		seed := "-"
		if l.rate > 0 {
			scenario = fmt.Sprintf("%.4f", l.rate)
			seed = strconv.FormatInt(l.seed, 10)
		}
		fmt.Fprintf(w, "%d\t%s\t%s\t%.4f\t%d\t%d\t%d\t%d\t%d\n",
			p.Index, scenario, seed, r.Throughput, r.Delivered, r.Dropped,
			r.Unreachable, r.Retransmitted, r.GaveUp)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(stderr, "bffarm:", err)
		return 1
	}
	fmt.Fprintf(stdout,
		"fleet: %d queries (%d deduped), %d calls, %d retries, %d hedges (%d won), %d leases (%d expired), %d shed, breakers %d opened / %d re-closed\n",
		st.Groups, st.Deduped, st.Calls, st.Retries, st.Hedges, st.HedgeWins,
		st.LeasesGranted, st.LeasesExpired, st.Shed, st.BreakerOpens, st.BreakerCloses)
	return 0
}

func main() {
	set := flag.NewFlagSet("bffarm", flag.ExitOnError)
	o := newOptions(set)
	_ = set.Parse(os.Args[1:])
	if err := o.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "bffarm:", err)
		set.Usage()
		os.Exit(2)
	}
	os.Exit(run(o, os.Stdout, os.Stderr))
}
