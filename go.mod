module bfvlsi

go 1.22
