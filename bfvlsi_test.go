package bfvlsi

import (
	"bytes"
	"strings"
	"testing"

	"bfvlsi/internal/fftsim"
	"bfvlsi/internal/routing"
)

func TestFacadeQuickPath(t *testing.T) {
	// The README quick-start path, end to end.
	res, err := LayoutButterfly(6)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats()
	if st.Area <= 0 || st.Wires != 2*6*64 {
		t.Errorf("stats = %+v", st)
	}
	if err := res.Validate(); err != nil {
		t.Error(err)
	}
}

func TestFacadeTransformAndPackage(t *testing.T) {
	spec, err := NewGroupSpec(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	sb := Transform(spec)
	if err := sb.VerifyAutomorphism(); err != nil {
		t.Fatal(err)
	}
	if PackageRows(sb).Stats().AvgOffLinksPerNode >= 2 {
		t.Error("row packaging worse than the naive baseline")
	}
	if PackageNuclei(sb).NumModules == 0 {
		t.Error("nucleus packaging empty")
	}
}

func TestFacadeMultilayer(t *testing.T) {
	res, err := LayoutMultilayer(6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Layers != 4 {
		t.Errorf("layers = %d", res.Layers)
	}
	if err := res.Validate(); err != nil {
		t.Error(err)
	}
}

func TestFacadeCollinear(t *testing.T) {
	ta, err := CollinearKN(9)
	if err != nil {
		t.Fatal(err)
	}
	if ta.NumTracks != 20 {
		t.Errorf("K_9 tracks = %d, want 20", ta.NumTracks)
	}
	if _, err := CollinearKN(1); err == nil {
		t.Error("CollinearKN(1) should fail: K_1 has no links")
	}
}

func TestFacadeBoardDesign(t *testing.T) {
	d, err := DesignBoard(9, 64, 20)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumChips != 64 || d.BoardArea(2) != 409600 {
		t.Errorf("board design off: chips=%d area=%d", d.NumChips, d.BoardArea(2))
	}
}

func TestFacadeRoutingAndFFT(t *testing.T) {
	r, err := SimulateRouting(routing.Params{N: 3, Lambda: 0.05, Warmup: 50, Cycles: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Delivered == 0 {
		t.Error("nothing delivered")
	}
	spec, _ := NewGroupSpec(2, 2)
	in := NewISN(spec)
	x := make([]complex128, in.Rows)
	x[1] = 1
	out, err := FFTOnISN(in, x)
	if err != nil {
		t.Fatal(err)
	}
	if e := fftsim.MaxError(out.Output, fftsim.DFT(x)); e > 1e-9 {
		t.Errorf("fft error %v", e)
	}
}

func TestFacadeFormulas(t *testing.T) {
	if PaperThompsonArea(9) <= 0 || PaperMultilayerArea(9, 4) >= PaperThompsonArea(9) {
		t.Error("formula facade inconsistent")
	}
}

func TestFacadeHypercubeAndTorus(t *testing.T) {
	q, err := LayoutHypercube(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(); err != nil {
		t.Error(err)
	}
	tor, err := LayoutTorus(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := tor.Validate(); err != nil {
		t.Error(err)
	}
}

func TestFacadeRenderSVG(t *testing.T) {
	res, err := LayoutButterfly(3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderSVG(&buf, res.L, SVGOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Error("not an SVG")
	}
}

func TestFacadeBenes(t *testing.T) {
	sw := NewBenes(4)
	perm := make([]int, sw.T)
	for i := range perm {
		perm[i] = (i + 5) % sw.T
	}
	if err := sw.Route(perm); err != nil {
		t.Fatal(err)
	}
	if err := sw.Verify(perm); err != nil {
		t.Error(err)
	}
}

func TestFacadeMultiLevelDesign(t *testing.T) {
	spec, _ := NewGroupSpec(3, 3, 3)
	d, err := DesignMultiLevelBoard(spec)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumBoards != 8 || d.BoardPins != 224 {
		t.Errorf("multi-level: %d boards, %d pins", d.NumBoards, d.BoardPins)
	}
}

func TestFacadeLayoutWithParams(t *testing.T) {
	spec, _ := NewGroupSpec(2, 2)
	res, err := LayoutWithParams(LayoutParams{Spec: spec, NodeSide: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.NodeSide != 6 {
		t.Errorf("node side = %d", res.NodeSide)
	}
}

func TestFacadeSaturationRate(t *testing.T) {
	rate, err := SaturationRate(3, routing.SaturationOptions{
		Warmup: 100, Cycles: 200, Steps: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0 || rate >= 1 {
		t.Errorf("rate = %v", rate)
	}
}

func TestFacadeButterflyAndSpecForDim(t *testing.T) {
	b := NewButterfly(4)
	if err := b.Verify(); err != nil {
		t.Error(err)
	}
	if SpecForDim(9).String() != "(3,3,3)" {
		t.Errorf("SpecForDim(9) = %v", SpecForDim(9))
	}
}

func TestFacadeFaultPlan(t *testing.T) {
	plan, err := NewFaultPlan(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.AddRandomLinkFaults(0.05, 9); err != nil {
		t.Fatal(err)
	}
	r, err := SimulateRouting(RoutingParams{
		N: 4, Lambda: 0.1, Warmup: 50, Cycles: 300, Seed: 9,
		Faults: plan, Policy: Misroute, TTL: DefaultPacketTTL(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckConservation(); err != nil {
		t.Error(err)
	}
	if r.Misroutes == 0 {
		t.Error("no misroutes around 5% dead links")
	}
	schemes, err := StandardFaultSchemes(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(schemes) != 3 {
		t.Errorf("got %d standard schemes, want 3", len(schemes))
	}
	sb := Transform(SpecForDim(4))
	moduleOf, err := RoutingModules(PackageNuclei(sb), sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(moduleOf) != 4*16 {
		t.Errorf("RoutingModules length %d, want 64", len(moduleOf))
	}
}
